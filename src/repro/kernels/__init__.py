"""Generated assembly kernels for the multi-precision inner loops.

The paper compiles its C++ ECDSA suite with GCC and measures cycle counts
on Verilator; we instead *generate* hand-scheduled MIPS assembly for the
multi-precision kernels that dominate execution time, run them on the Pete
timing simulator, and validate every result bit-for-bit against
:mod:`repro.mp`.  The measured per-kernel cycle counts (and ROM/RAM
activity) feed the whole-operation model in :mod:`repro.model`.

Kernels (all parameterized by the word count k):

========================  =====================================  ==========
kernel                    implements                             ISA needs
========================  =====================================  ==========
``mp_add`` / ``mp_sub``   word add/sub with carry/borrow         base
``os_mul``                operand-scanning mul (Algorithm 2)     base
``ps_mul_ext``            product-scanning mul (Algorithm 3)     MADDU/SHA
``ps_sqr_ext``            product-scanning square                M2ADDU
``red_p192``              NIST fast reduction (Algorithm 4)      base
``comb_mul``              comb binary mul (Algorithm 6, w=4)     base
``bsqr_table``            table-based binary squaring            base
``ps_mulgf2``             carry-less product scanning            MADDGF2
``bsqr_ext``              squaring via MULGF2                    MULGF2
``red_b163``              binary fast reduction (Algorithm 7)    base
========================  =====================================  ==========
"""

from repro.kernels.runner import KernelResult, KernelRunner

__all__ = ["KernelRunner", "KernelResult"]
