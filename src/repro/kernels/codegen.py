"""Small assembly-emission helper used by the kernel generators."""

from __future__ import annotations


class Asm:
    """Accumulates assembly source lines with light formatting."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def emit(self, text: str, comment: str = "") -> None:
        line = f"    {text}"
        if comment:
            line = f"{line:<40}# {comment}"
        self.lines.append(line)

    def ds(self, text: str) -> None:
        """Place an instruction in the preceding branch's delay slot."""
        self.lines.append(f"    .ds {text}")

    def comment(self, text: str) -> None:
        self.lines.append(f"    # {text}")

    def blank(self) -> None:
        self.lines.append("")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"

    def extend(self, other: "Asm") -> None:
        self.lines.extend(other.lines)
