"""Speck64/128 encryption as a generated Pete kernel.

Grounds the protocol layer's symmetric energy-per-byte in a measured
cycle count: one block = 27 unrolled ARX rounds, each five shifts, an
add, two xors and a round-key load -- all single-cycle ALU ops on Pete,
which is precisely why lightweight ciphers standardize on ARX.
"""

from __future__ import annotations

from repro.kernels.codegen import Asm
from repro.symmetric.speck import ALPHA, BETA, ROUNDS


def gen_speck64_encrypt() -> str:
    """speck64_enc(dst, src, round_keys): one 64-bit block.

    $a0 -> 8-byte ciphertext, $a1 -> 8-byte plaintext, $a2 -> 27 round
    keys.  Fully unrolled (the compiled reference would be too, at -O2
    with constant trip count).
    """
    asm = Asm()
    asm.label("speck64_enc")
    asm.emit("lw $t1, 0($a1)", "y (low word)")
    asm.emit("lw $t0, 4($a1)", "x (high word)")
    for rnd in range(ROUNDS):
        asm.comment(f"round {rnd}")
        asm.emit(f"srl $t2, $t0, {ALPHA}")
        asm.emit(f"sll $t3, $t0, {32 - ALPHA}")
        asm.emit("or $t2, $t2, $t3", "ROR(x, 8)")
        asm.emit("addu $t0, $t2, $t1", "+ y")
        asm.emit(f"lw $t4, {4 * rnd}($a2)", "round key")
        asm.emit("xor $t0, $t0, $t4", "x = (ROR(x,8)+y) ^ k")
        asm.emit(f"sll $t2, $t1, {BETA}")
        asm.emit(f"srl $t3, $t1, {32 - BETA}")
        asm.emit("or $t1, $t2, $t3", "ROL(y, 3)")
        asm.emit("xor $t1, $t1, $t0", "y = ROL(y,3) ^ x")
    asm.emit("sw $t1, 0($a0)")
    asm.emit("sw $t0, 4($a0)")
    asm.emit("jr $ra")
    return asm.source()
