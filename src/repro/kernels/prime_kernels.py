"""Assembly generators for the prime-field (and shared integer) kernels.

Register conventions (leaf functions, no stack frames needed):

* ``$a0`` destination pointer, ``$a1``/``$a2`` operand pointers;
* ``$v0`` carry/borrow out where applicable;
* ``$t*`` scratch, ``$s*`` loop state (callers are generated harnesses, so
  no callee-save discipline is required);
* every kernel returns with ``jr $ra``.
"""

from __future__ import annotations

from repro.kernels.codegen import Asm


def gen_mp_add(k: int) -> str:
    """dst[k] = a[k] + b[k]; $v0 = carry out.  Unrolled O(k) word loop
    (ADDU/SLTU carry chain -- MIPS has no carry flag)."""
    asm = Asm()
    asm.label("mp_add")
    asm.emit("li $v0, 0", "carry")
    for i in range(k):
        off = 4 * i
        asm.emit(f"lw $t0, {off}($a1)")
        asm.emit(f"lw $t1, {off}($a2)")
        asm.emit("addu $t2, $t0, $t1")
        asm.emit("sltu $t3, $t2, $t0", "carry from a+b")
        asm.emit("addu $t2, $t2, $v0")
        asm.emit("sltu $t4, $t2, $v0", "carry from +cin")
        asm.emit(f"sw $t2, {off}($a0)")
        asm.emit("or $v0, $t3, $t4")
    asm.emit("jr $ra")
    return asm.source()


def gen_mp_sub(k: int) -> str:
    """dst[k] = a[k] - b[k]; $v0 = borrow out."""
    asm = Asm()
    asm.label("mp_sub")
    asm.emit("li $v0, 0", "borrow")
    for i in range(k):
        off = 4 * i
        asm.emit(f"lw $t0, {off}($a1)")
        asm.emit(f"lw $t1, {off}($a2)")
        asm.emit("subu $t2, $t0, $t1")
        asm.emit("sltu $t3, $t0, $t1", "borrow from a-b")
        asm.emit("sltu $t4, $t2, $v0", "borrow from -bin")
        asm.emit("subu $t2, $t2, $v0")
        asm.emit(f"sw $t2, {off}($a0)")
        asm.emit("or $v0, $t3, $t4")
    asm.emit("jr $ra")
    return asm.source()


def gen_os_mul(k: int) -> str:
    """Operand-scanning multiplication (Algorithm 2): dst[2k] = a * b.

    Outer loop over multiplier words; inner loop unrolled with the MULTU
    issued early so the 4-cycle Karatsuba multiplier drains behind the
    partial-product loads and adds (the "statically scheduled multiply" of
    Section 5.1.1).
    """
    asm = Asm()
    asm.label("os_mul")
    asm.comment("zero the 2k result words")
    for i in range(2 * k):
        asm.emit(f"sw $zero, {4 * i}($a0)")
    asm.emit("li $s2, 0", "i byte offset into B")
    asm.emit(f"li $s4, {4 * k}", "loop bound")
    asm.label("os_outer")
    asm.emit("addu $t9, $a2, $s2")
    asm.emit("lw $s0, 0($t9)", "b_i")
    asm.emit("li $s1, 0", "carry word u")
    asm.emit("addu $s3, $a0, $s2", "&p[i]")
    # Software-pipelined inner loop (the Section 5.1.1 static schedule):
    # the Hi/Lo multiplier computes product j while the adds and store of
    # product j-1 drain, fully hiding the 4-cycle multiply latency.
    asm.emit("lw $t0, 0($a1)", "a_0")
    asm.emit("multu $t0, $s0", "prime the multiplier")
    for j in range(k):
        off = 4 * j
        if j + 1 < k:
            asm.emit(f"lw $t0, {4 * (j + 1)}($a1)", f"a_{j + 1}")
        asm.emit(f"lw $t1, {off}($s3)", f"p[i+{j}]")
        asm.emit("addu $t2, $t1, $s1", "p + u")
        asm.emit("sltu $s1, $t2, $t1", "carry1")
        asm.emit("mflo $t3", f"product {j} low")
        asm.emit("mfhi $t4", f"product {j} high")
        if j + 1 < k:
            asm.emit("multu $t0, $s0", "issue the next multiply")
        asm.emit("addu $t5, $t2, $t3", "+ lo")
        asm.emit("sltu $t6, $t5, $t3", "carry2")
        asm.emit(f"sw $t5, {off}($s3)")
        asm.emit("addu $s1, $s1, $t6")
        asm.emit("addu $s1, $s1, $t4", "u = hi + carries")
    asm.emit(f"sw $s1, {4 * k}($s3)", "p[i+k] = u")
    asm.emit("addiu $s2, $s2, 4")
    asm.emit("bne $s2, $s4, os_outer")
    asm.ds("nop")
    asm.emit("jr $ra")
    return asm.source()


def gen_ps_mul_ext(k: int, squaring: bool = False,
                   carryless: bool = False) -> str:
    """Product-scanning multiplication with the accumulator extensions
    (Algorithm 3 + Table 5.1): dst[2k] = a * b.

    Column loops over the low phase (i = 0..k-1) and high phase
    (i = k..2k-2).  The inner loop walks two *pointers* -- one ascending
    through a, one descending through b -- so each partial product costs
    two loads, one MADDU and the loop bookkeeping (the delay slot holds
    the descending-pointer update).  Each column drains one result word
    with MFLO + SHA.

    With ``squaring`` the M2ADDU instruction halves the inner trip count
    (off-diagonal terms counted twice); with ``carryless`` the MADDGF2
    instruction replaces MADDU (the binary Table 5.2 path).
    """
    asm = Asm()
    if carryless:
        name = "ps_mulgf2"
        madd = "maddgf2"
    else:
        name = "ps_sqr_ext" if squaring else "ps_mul_ext"
        madd = "maddu"
    asm.label(name)
    asm.emit("mtlo $zero")
    asm.emit("mthi $zero")
    # clear OvFlo via two accumulator shifts
    asm.emit("sha")
    asm.emit("sha")
    if squaring:
        # the squaring body manages its own pointers ($s4-$s6)
        return _ps_squaring_body(asm, k, name)
    asm.emit("move $s0, $a0", "&p[i]")
    asm.emit("move $s2, $a2", "&b[i] (column seed)")
    asm.emit(f"addiu $s5, $a0, {4 * (k - 1)}", "last low column")
    asm.emit(f"addiu $s6, $a0, {4 * (2 * k - 2)}", "last column")
    asm.comment("phase 1: columns 0..k-1, j = 0..i")
    asm.label(f"{name}_col_lo")
    asm.emit("move $s1, $a1", "a-pointer: &a[0]")
    asm.emit("move $s3, $s2", "b-pointer: &b[i], descending")
    asm.label(f"{name}_in_lo")
    asm.emit("lw $t0, 0($s1)", "a[j]")
    asm.emit("lw $t1, 0($s3)", "b[i-j]")
    asm.emit(f"{madd} $t0, $t1")
    asm.emit("addiu $s1, $s1, 4")
    asm.emit(f"bne $s3, $a2, {name}_in_lo")
    asm.ds("addiu $s3, $s3, -4")
    asm.emit("mflo $t5")
    asm.emit("sw $t5, 0($s0)", "p[i]")
    asm.emit("sha", "accumulator >>= 32")
    asm.emit("addiu $s2, $s2, 4", "&b[i+1]")
    asm.emit(f"bne $s0, $s5, {name}_col_lo")
    asm.ds("addiu $s0, $s0, 4")
    asm.comment("phase 2: columns k..2k-2, j = i-k+1..k-1")
    asm.emit(f"addiu $s2, $a2, {4 * (k - 1)}", "&b[k-1], fixed")
    asm.emit("addiu $s4, $a1, 4", "&a[i-k+1] seed")
    asm.emit(f"addiu $s7, $a1, {4 * k}", "a-pointer sentinel")
    asm.label(f"{name}_col_hi")
    asm.emit("move $s1, $s4", "a-pointer ascending")
    asm.emit("move $s3, $s2", "b-pointer descending from b[k-1]")
    asm.label(f"{name}_in_hi")
    asm.emit("lw $t0, 0($s1)", "a[j]")
    asm.emit("lw $t1, 0($s3)", "b[i-j]")
    asm.emit(f"{madd} $t0, $t1")
    asm.emit("addiu $s1, $s1, 4")
    asm.emit(f"bne $s1, $s7, {name}_in_hi")
    asm.ds("addiu $s3, $s3, -4")
    asm.emit("mflo $t5")
    asm.emit("sw $t5, 0($s0)", "p[i]")
    asm.emit("sha")
    asm.emit("addiu $s4, $s4, 4")
    asm.emit(f"bne $s0, $s6, {name}_col_hi")
    asm.ds("addiu $s0, $s0, 4")
    asm.emit("mflo $t5")
    asm.emit(f"sw $t5, {4 * (2 * k - 1)}($a0)", "p[2k-1]")
    asm.emit("jr $ra")
    return asm.source()


def _ps_squaring_body(asm: Asm, k: int, name: str) -> str:
    """Squaring phase bodies: the M2ADDU loop runs j over the half-range
    with one diagonal MADDU when the column index is even."""
    asm.comment("phase 1: columns 0..k-1, paired j < i-j plus diagonal")
    asm.emit("li $s4, 0", "i*4")
    asm.emit(f"li $s5, {4 * (k - 1)}")
    asm.emit(f"li $s6, {4 * (2 * k - 2)}")
    asm.label(f"{name}_col_lo")
    asm.emit("move $s1, $a1", "&a[j], ascending")
    asm.emit("addu $s3, $a2, $s4", "&a[i-j], descending")
    asm.label(f"{name}_in_lo")
    asm.emit("sltu $t3, $s1, $s3", "j < i-j ?")
    asm.emit("beq $t3, $zero, %s_diag_lo" % name)
    asm.ds("nop")
    asm.emit("lw $t0, 0($s1)")
    asm.emit("lw $t1, 0($s3)")
    asm.emit("m2addu $t0, $t1", "2 a[j] a[i-j]")
    asm.emit("addiu $s1, $s1, 4")
    asm.emit("b %s_in_lo" % name)
    asm.ds("addiu $s3, $s3, -4")
    asm.label(f"{name}_diag_lo")
    asm.emit("bne $s1, $s3, %s_store_lo" % name)
    asm.ds("nop")
    asm.emit("lw $t0, 0($s1)")
    asm.emit("maddu $t0, $t0", "diagonal a[j]^2")
    asm.label(f"{name}_store_lo")
    asm.emit("addu $t4, $a0, $s4")
    asm.emit("mflo $t5")
    asm.emit("sw $t5, 0($t4)")
    asm.emit("sha")
    asm.emit("bne $s4, $s5, %s_col_lo" % name)
    asm.ds("addiu $s4, $s4, 4")
    asm.comment("phase 2: columns k..2k-2")
    asm.label(f"{name}_col_hi")
    asm.emit(f"addiu $s1, $s4, {-4 * (k - 1)}")
    asm.emit("addu $s1, $a1, $s1", "&a[i-k+1] (j start)")
    asm.emit(f"addiu $s3, $a2, {4 * (k - 1)}", "&a[k-1] (i-j start)")
    asm.label(f"{name}_in_hi")
    asm.emit("sltu $t3, $s1, $s3")
    asm.emit("beq $t3, $zero, %s_diag_hi" % name)
    asm.ds("nop")
    asm.emit("lw $t0, 0($s1)")
    asm.emit("lw $t1, 0($s3)")
    asm.emit("m2addu $t0, $t1")
    asm.emit("addiu $s1, $s1, 4")
    asm.emit("b %s_in_hi" % name)
    asm.ds("addiu $s3, $s3, -4")
    asm.label(f"{name}_diag_hi")
    asm.emit("bne $s1, $s3, %s_store_hi" % name)
    asm.ds("nop")
    asm.emit("lw $t0, 0($s1)")
    asm.emit("maddu $t0, $t0")
    asm.label(f"{name}_store_hi")
    asm.emit("addu $t4, $a0, $s4")
    asm.emit("mflo $t5")
    asm.emit("sw $t5, 0($t4)")
    asm.emit("sha")
    asm.emit("bne $s4, $s6, %s_col_hi" % name)
    asm.ds("addiu $s4, $s4, 4")
    asm.emit("mflo $t5")
    asm.emit(f"sw $t5, {4 * (2 * k - 1)}($a0)", "p[2k-1]")
    asm.emit("jr $ra")
    return asm.source()


def gen_red_p192() -> str:
    """NIST fast reduction modulo P-192 (Algorithm 4), fully unrolled
    and register-resident.

    The twelve product words load once into registers (C[0..11] in
    s0-s7/t7-t9/a3/v1); the four fold vectors

        s1 = [c0..c5]
        s2 = [c6, c7, c6, c7,  0,  0]
        s3 = [ 0,  0, c8, c9, c8, c9]
        s4 = [c10,c11,c10,c11,c10,c11]

    accumulate into the c0..c5 registers with an SLTU carry chain, the
    carry word folds back via 2^192 == 2^64 + 1 (mod p), and a single
    register-resident conditional subtraction corrects the result.

    Reads the 12-word product at $a1; writes the 6-word residue to $a0.
    """
    asm = Asm()
    regs = ["$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
            "$t7", "$t8", "$t9", "$a3"]
    asm.label("red_p192")
    for i, reg in enumerate(regs):
        asm.emit(f"lw {reg}, {4 * i}($a1)", f"c{i}")
    columns = [
        (0, 6, None, 10),
        (1, 7, None, 11),
        (2, 6, 8, 10),
        (3, 7, 9, 11),
        (4, None, 8, 10),
        (5, None, 9, 11),
    ]
    asm.emit("li $v0, 0", "running carry")
    for out_idx, col in enumerate(columns):
        dst = regs[out_idx]
        asm.emit(f"addu $t0, {dst}, $v0", "column base + carry-in")
        asm.emit(f"sltu $v0, $t0, {dst}")
        for src_idx in col[1:]:
            if src_idx is None:
                continue
            asm.emit(f"addu $t1, $t0, {regs[src_idx]}")
            asm.emit(f"sltu $t2, $t1, {regs[src_idx]}")
            asm.emit("addu $v0, $v0, $t2")
            asm.emit("move $t0, $t1")
        asm.emit(f"move {dst}, $t0", f"T[{out_idx}]")
    asm.comment("fold the carry word: 2^192 == 2^64 + 1 (mod p)")
    asm.label("red_p192_fold")
    asm.emit("beq $v0, $zero, red_p192_cmp")
    asm.ds("nop")
    asm.emit("move $t3, $v0", "fold value (words 0 and 2)")
    carry = "$t4"
    for i in range(6):
        dst = regs[i]
        if i == 0:
            asm.emit(f"addu $t0, {dst}, $t3")
            asm.emit(f"sltu {carry}, $t0, {dst}")
        else:
            asm.emit(f"addu $t0, {dst}, {carry}")
            asm.emit(f"sltu {carry}, $t0, {dst}")
            if i == 2:
                asm.emit("addu $t1, $t0, $t3", "second fold term")
                asm.emit("sltu $t2, $t1, $t0")
                asm.emit("move $t0, $t1")
                asm.emit(f"or {carry}, {carry}, $t2")
        asm.emit(f"move {dst}, $t0")
    asm.emit(f"move $v0, {carry}", "fold may carry out once more")
    asm.emit("b red_p192_fold")
    asm.ds("nop")
    asm.comment("conditional subtraction: T -= p if T >= p, in registers")
    # p words: [0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFE, 0xFFFFFFFF,
    #           0xFFFFFFFF, 0xFFFFFFFF]; note x - 0xFFFFFFFF = x + 1
    # (mod 2^32), so the trial subtraction is an increment chain.
    asm.label("red_p192_cmp")
    p_words = [0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFE,
               0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF]
    asm.emit("li $t4, 0", "borrow")
    scratch = ["$t7", "$t8", "$t9", "$a3", "$v1", "$t6"]
    for i, pw in enumerate(p_words):
        dst = regs[i]
        hold = scratch[i]
        asm.emit(f"li $t1, {pw}")
        asm.emit(f"subu $t0, {dst}, $t1")
        asm.emit(f"sltu $t2, {dst}, $t1")
        asm.emit("sltu $t3, $t0, $t4")
        asm.emit("subu $t0, $t0, $t4")
        asm.emit("or $t4, $t2, $t3")
        asm.emit(f"move {hold}, $t0", "trial difference")
    asm.emit("bne $t4, $zero, red_p192_done", "borrowed: T < p")
    asm.ds("nop")
    for i in range(6):
        asm.emit(f"move {regs[i]}, {scratch[i]}")
    asm.label("red_p192_done")
    for i in range(6):
        asm.emit(f"sw {regs[i]}, {4 * i}($a0)")
    asm.emit("jr $ra")
    return asm.source()
