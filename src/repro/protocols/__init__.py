"""Secure-session protocols built on the asymmetric primitives.

The paper's energy unit -- Sign + Verify -- "closely models an SSL
handshake on the client side" (Section 7.6), and its motivation chapters
describe the full picture: asymmetric cryptography establishes an
authenticated session key, then symmetric cryptography carries the bulk
traffic ("it is more energy efficient to amortize a key-exchange across
a lengthy communication session", Section 2.1.1).  This subpackage
implements that picture: ECDH key agreement, an authenticated
station-to-station style handshake, and the session-amortization energy
model the examples use.
"""

from repro.protocols.ecdh import (
    derive_session_key,
    ecdh_shared_secret,
    generate_ephemeral,
)
from repro.protocols.handshake import (
    Handshake,
    HandshakeTranscript,
    handshake_energy,
)

__all__ = [
    "ecdh_shared_secret",
    "generate_ephemeral",
    "derive_session_key",
    "Handshake",
    "HandshakeTranscript",
    "handshake_energy",
]
