"""An authenticated key-establishment handshake and its energy model.

A station-to-station style exchange between two devices A and B:

1. each side generates an ephemeral ECDH keypair and sends its public
   point (compressed);
2. each side signs the transcript (both ephemeral points) with its
   long-term ECDSA key and sends the signature;
3. each side verifies the peer's signature and derives the session key.

Per side that is: 2 scalar multiplications (ephemeral keygen + shared
secret), 1 signature, 1 verification -- which is why the paper's
"Sign + Verify" unit tracks the handshake cost so closely, and what the
Wander/Pabbuleti energy discussions in the related work price against
radio bytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.ec.compression import compress, decompress, signature_to_bytes
from repro.ec.curves import Curve
from repro.ecdsa import sign_digest, verify_digest
from repro.model.system import SystemModel
from repro.protocols.ecdh import (
    derive_session_key,
    ecdh_shared_secret,
    generate_ephemeral,
)


@dataclass
class HandshakeTranscript:
    """What went over the radio (for the bytes-vs-joules trade-off)."""

    a_public: bytes
    b_public: bytes
    a_signature: bytes
    b_signature: bytes

    @property
    def radio_bytes(self) -> int:
        return (len(self.a_public) + len(self.b_public)
                + len(self.a_signature) + len(self.b_signature))


@dataclass
class Handshake:
    """The completed exchange: both sides must agree on the key."""

    session_key_a: bytes
    session_key_b: bytes
    transcript: HandshakeTranscript

    @property
    def succeeded(self) -> bool:
        return (self.session_key_a == self.session_key_b
                and len(self.session_key_a) == 16)


def run_handshake(curve: Curve, a_private: int, a_public, b_private: int,
                  b_public, nonce_seed: bytes = b"hs") -> Handshake:
    """Execute the full protocol functionally (both sides)."""
    a_eph_priv, a_eph_pub = generate_ephemeral(curve, nonce_seed + b"|A")
    b_eph_priv, b_eph_pub = generate_ephemeral(curve, nonce_seed + b"|B")

    a_wire = compress(curve, a_eph_pub)
    b_wire = compress(curve, b_eph_pub)
    transcript_digest = hashlib.sha256(a_wire + b_wire).digest()

    a_sig = sign_digest(curve, a_private, transcript_digest)
    b_sig = sign_digest(curve, b_private, transcript_digest)

    # each side verifies the peer before deriving anything
    assert verify_digest(curve, b_public, transcript_digest, b_sig)
    assert verify_digest(curve, a_public, transcript_digest, a_sig)

    a_shared = ecdh_shared_secret(curve, a_eph_priv,
                                  decompress(curve, b_wire))
    b_shared = ecdh_shared_secret(curve, b_eph_priv,
                                  decompress(curve, a_wire))
    key_a = derive_session_key(a_shared, curve, transcript_digest)
    key_b = derive_session_key(b_shared, curve, transcript_digest)
    return Handshake(key_a, key_b, HandshakeTranscript(
        a_wire, b_wire,
        signature_to_bytes(curve, a_sig), signature_to_bytes(curve, b_sig),
    ))


# ---------------------------------------------------------------------------
# Energy model
# ---------------------------------------------------------------------------

#: Radio energy per transmitted byte for a CC2500-class low-power
#: transceiver (the Pabbuleti et al. platform): ~1.2 uJ/byte including
#: framing at 250 kbps.
RADIO_UJ_PER_BYTE = 1.2


def symmetric_uj_per_byte() -> float:
    """Measured symmetric-encryption energy per byte on the baseline:
    the Speck64/128 kernel's cycles/byte priced at the baseline's
    per-cycle energy mix (core + ROM fetch + occasional RAM)."""
    from repro.energy.calibration import CALIBRATION
    from repro.kernels.runner import shared_runner

    result = shared_runner().measure("speck64", 1)
    cycles_per_byte = result.cycles / 8.0
    cal = CALIBRATION
    pj_per_cycle = (cal.pete.active_pj
                    + cal.rom().read_energy_pj()
                    + 0.1 * cal.ram().read_energy_pj())
    return cycles_per_byte * pj_per_cycle * 1e-6


@dataclass(frozen=True)
class HandshakeEnergy:
    """Per-side energy for one authenticated handshake."""

    curve: str
    config: str
    compute_uj: float
    radio_uj: float

    @property
    def total_uj(self) -> float:
        return self.compute_uj + self.radio_uj

    @property
    def compute_share(self) -> float:
        return self.compute_uj / self.total_uj


def handshake_energy(curve_name: str, config: str,
                     model: SystemModel | None = None) -> HandshakeEnergy:
    """Per-side cost: 1 sign + 1 verify + 2 scalar multiplications
    (keygen + shared secret, each priced as a signature's scalar-mult
    portion) + the radio bytes of one compressed point and one
    signature."""
    from repro.ec.curves import get_curve

    model = model or SystemModel()
    curve = get_curve(curve_name)
    sign_report = model.report(curve_name, config, "sign")
    verify_report = model.report(curve_name, config, "verify")
    # a scalar multiplication is a signature minus its order arithmetic;
    # approximate it as 80 % of the sign energy (the Billie/Monte split
    # analyses put order arithmetic at 20-60 % -- use the sign report's
    # cycle share would require re-running, so stay coarse but documented)
    scalar_mult_uj = 0.8 * sign_report.total_uj
    compute = (sign_report.total_uj + verify_report.total_uj
               + 2 * scalar_mult_uj)
    point_bytes = 1 + (curve.bits + 7) // 8
    sig_bytes = 2 * ((curve.n.bit_length() + 7) // 8)
    radio = RADIO_UJ_PER_BYTE * (point_bytes + sig_bytes)
    return HandshakeEnergy(curve_name, config, compute, radio)
