"""Elliptic-curve Diffie-Hellman key agreement (paper Section 2.1).

The one-way function is the same scalar point multiplication ECDSA uses,
so the energy model prices an ECDH operation exactly like a signature's
scalar multiplication.  Cofactor multiplication is applied on the binary
curves (h = 2) so small-subgroup points cannot leak key bits.
"""

from __future__ import annotations

import hashlib

from repro.ec.curves import Curve
from repro.ec.point import AffinePoint
from repro.ec.scalar import sliding_window_mul


def generate_ephemeral(curve: Curve, seed: bytes) -> tuple[int, AffinePoint]:
    """A deterministic ephemeral keypair for one handshake."""
    counter = 0
    k = 0
    while not 1 <= k < curve.n:
        material = hashlib.sha512(
            b"ecdh|" + seed + counter.to_bytes(4, "big")).digest()
        k = int.from_bytes(material, "big") % curve.n
        counter += 1
    return k, sliding_window_mul(curve, k, curve.generator)


def ecdh_shared_secret(curve: Curve, private: int,
                       peer_public: AffinePoint) -> int:
    """The shared x-coordinate: x(h * d * Q_peer).

    Raises if the peer's point is invalid (off-curve or small-order) --
    the classic invalid-curve defence.
    """
    if not peer_public or not curve.contains(peer_public):
        raise ValueError("invalid peer public key")
    point = sliding_window_mul(curve, private * curve.h, peer_public)
    if not point:
        raise ValueError("peer public key in the small subgroup")
    return point.x


def derive_session_key(shared_x: int, curve: Curve,
                       context: bytes = b"") -> bytes:
    """KDF: hash the shared secret into a 128-bit symmetric key."""
    length = (curve.bits + 7) // 8
    material = shared_x.to_bytes(length, "big")
    return hashlib.sha256(b"kdf|" + material + b"|" + context).digest()[:16]
