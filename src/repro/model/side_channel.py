"""Timing side-channel analysis of the scalar-multiplication algorithms.

The paper notes (Section 2.1.5) that the right-to-left double-and-add of
Algorithm 1 is "relatively inefficient and susceptible to side-channel
attacks", and that the Montgomery ladder performs the same work per bit
regardless of its value.  Because this repository's accelerators are
cycle-accurate timing machines, that claim is *measurable*: this module
runs scalars of equal bit length but different Hamming weight through
Billie and reports how strongly the execution time correlates with the
secret's weight.

Measured outcome (tests pin these):

* naive double-and-add leaks the Hamming weight *monotonically* and
  enormously (a dense scalar costs ~70 % more than a sparse one);
* the window methods do data-independent doubling but leak the
  *recoded digit density*, which varies with bit patterns in a
  non-monotonic way an attacker cannot simply read the weight from;
* the ladder performs identical work per bit; the residual ~1 % spread
  the simulator still shows comes from bit-dependent register
  assignment interacting with Billie's hazard logic -- exactly the
  micro-architectural leakage real constant-work ladders exhibit on
  pipelined hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.billie import Billie, BillieConfig
from repro.ec.curves import Curve


@dataclass(frozen=True)
class LeakageReport:
    """Cycle counts for scalars of fixed length, varying weight."""

    algorithm: str
    cycles_by_weight: dict[int, int]

    @property
    def spread(self) -> float:
        """(max - min) / min over the weight sweep: 0 = constant time."""
        values = list(self.cycles_by_weight.values())
        return (max(values) - min(values)) / min(values)

    @property
    def leaks_weight(self) -> bool:
        """Does time increase monotonically with Hamming weight?"""
        ordered = [self.cycles_by_weight[w]
                   for w in sorted(self.cycles_by_weight)]
        return all(a < b for a, b in zip(ordered, ordered[1:]))


def _scalar_of_weight(bits: int, weight: int) -> int:
    """A scalar with the top bit set plus weight-1 evenly spread bits."""
    value = 1 << (bits - 1)
    if weight > 1:
        step = (bits - 2) // (weight - 1) or 1
        position = 0
        placed = 1
        while placed < weight and position < bits - 1:
            value |= 1 << position
            position += step
            placed += 1
    return value


def _naive_double_and_add_cycles(billie: Billie, curve: Curve,
                                 scalar: int) -> int:
    """Algorithm 1 on Billie: double every bit, add only on set bits --
    the data-dependent schedule that leaks."""
    from repro.model.billie_driver import BillieDriver

    billie.reset_time()
    driver = BillieDriver(billie, curve)
    g = curve.generator
    regs = driver.regs
    qx, qy = driver.alloc_load(g.x), driver.alloc_load(g.y)
    ax, ay, az = regs.alloc(), regs.alloc(), regs.alloc()
    driver.load(ax, g.x)
    driver.load(ay, g.y)
    driver.load(az, 1)
    for bit in bin(scalar)[3:]:
        driver.double(ax, ay, az)
        if bit == "1":
            ax, ay, az = driver.add_mixed(ax, ay, az, qx, qy)
    return billie.sync()


def _ladder_cycles(billie: Billie, curve: Curve, scalar: int) -> int:
    from repro.model.billie_driver import run_montgomery_ladder

    run = run_montgomery_ladder(curve, scalar, curve.generator, billie)
    return run.cycles


def _window_cycles(billie: Billie, curve: Curve, scalar: int) -> int:
    from repro.model.billie_driver import run_sliding_window

    run = run_sliding_window(curve, scalar, curve.generator, billie)
    return run.cycles


ALGORITHMS = {
    "double_and_add": _naive_double_and_add_cycles,
    "sliding_window": _window_cycles,
    "montgomery_ladder": _ladder_cycles,
}


def leakage_report(algorithm: str, curve: Curve,
                   weights: tuple[int, ...] = (8, 40, 80, 120, 155),
                   ) -> LeakageReport:
    """Sweep scalars of the curve's full bit length across Hamming
    weights and time each with the requested algorithm on Billie."""
    runner = ALGORITHMS[algorithm]
    cycles = {}
    for weight in weights:
        scalar = _scalar_of_weight(curve.bits - 1, weight)
        billie = Billie(BillieConfig(m=curve.bits))
        cycles[weight] = runner(billie, curve, scalar)
    return LeakageReport(algorithm, cycles)
