"""Instruction-cache behaviour for the full ECDSA workload (Section 7.5).

The kernels alone almost never miss (each fits in any cache), so the
interesting cache behaviour comes from the *whole program*: a hot loop in
which the point routines interleave calls to the multiplication,
reduction and add/sub kernels (~3 KB of cyclically re-executed code),
plus the scalar-multiplication driver, occasional order arithmetic and
runtime glue, plus a tail of cold library code that misses at any
realistic cache size.

We build a synthetic instruction-address trace with that structure and
run it through the *real* direct-mapped cache + stream-buffer simulator
(:mod:`repro.pete.icache`).  The trace generator is the substitution
documented in DESIGN.md; the cache, prefetcher, fill traffic and miss
penalties are simulated, not modeled.  The resulting miss profile
reproduces the paper's qualitative findings: the big miss-rate drop
arrives at 4 KB (the working-set knee), the drop beyond 4 KB is small
(cold-code floor), and prefetch coverage is high for the large caches'
sequential misses but poor for the small caches' conflict misses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro.pete.icache import ICache, ICacheConfig
from repro.pete.stats import CoreStats

#: Hot-code layout (function -> size in bytes).  The cyclic core
#: (field_mul + field_reduce + field_addsub + one point routine) is
#: ~3 KB; everything hot together is ~5.4 KB -- the measured working-set
#: knee lands at 4 KB as in the paper.
HOT_LAYOUT: tuple[tuple[str, int], ...] = (
    ("field_mul", 1300),
    ("field_reduce", 800),
    ("field_addsub", 400),
    ("point_double", 520),
    ("point_add", 560),
    ("scalar_loop", 280),
    ("order_arith", 700),
    ("misc_runtime", 800),
)

#: Kernels whose bodies execute in a strided (branchy) order would make
#: misses non-sequential; the generated kernels are straight-line loops,
#: so the set is empty and the stream buffer covers most misses -- its
#: energy downside at large caches comes from the per-fetch buffer
#: compare and the speculative ROM reads, as the paper observes.
STRIDED_FUNCTIONS: frozenset[str] = frozenset()

#: Cold-code excursions (library calls, exception paths): one ~1.1 KB
#: sweep into a 64 KB region per point operation on average.  These are
#: the compulsory misses that remain at every cache size (the 4->8 KB
#: floor).
COLD_PROBABILITY = 1.0
COLD_CHUNK_BYTES = 480
COLD_REGION_BYTES = 64 * 1024


@dataclass(frozen=True)
class CacheStudyResult:
    """Outcome of one cache configuration against the ECDSA trace."""

    config: ICacheConfig
    accesses: int
    misses: int
    prefetch_hits: int
    rom_line_reads: int
    extra_stall_cycles: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def effective_miss_rate(self) -> float:
        """Misses that actually stall (stream-buffer hits do not)."""
        stalls = self.misses - self.prefetch_hits
        return stalls / self.accesses if self.accesses else 0.0

    @property
    def prefetch_coverage(self) -> float:
        return self.prefetch_hits / self.misses if self.misses else 0.0


def _function_bases() -> tuple[dict[str, int], int]:
    bases = {}
    addr = 0x0000_2000  # past the reset/init region
    for name, size in HOT_LAYOUT:
        bases[name] = addr
        addr += (size + 15) & ~15
    return bases, addr


def _body(base: int, size: int, strided: bool) -> Iterator[int]:
    """One execution of a function body: line-granular sweep, optionally
    in the strided (branchy) order."""
    lines = list(range(base, base + size, 16))
    order = lines[::2] + lines[1::2] if strided else lines
    for line in order:
        for addr in range(line, min(line + 16, base + size), 4):
            yield addr


def ecdsa_instruction_trace(point_ops: int = 150,
                            seed: int = 7) -> Iterator[int]:
    """Instruction addresses for ``point_ops`` point operations of an
    ECDSA scalar multiplication."""
    rng = random.Random(seed)
    bases, cold_base = _function_bases()
    sizes = dict(HOT_LAYOUT)

    def run(name: str) -> Iterator[int]:
        return _body(bases[name], sizes[name], name in STRIDED_FUNCTIONS)

    for op in range(point_ops):
        point = "point_add" if op % 3 == 0 else "point_double"
        pbase, psize = bases[point], sizes[point]
        chunk = max(16, (psize // 9) & ~15)
        for i in range(9):
            # the point routine's body interleaves with its field calls
            yield from _body(pbase + chunk * i, chunk, False)
            yield from run("field_mul")
            yield from run("field_reduce")
            if i < 7:
                yield from run("field_addsub")
        yield from run("scalar_loop")
        if rng.random() < 0.35:
            yield from run("misc_runtime")
        if rng.random() < 0.02:
            yield from run("order_arith")
        if rng.random() < COLD_PROBABILITY:
            offset = cold_base + 16 * rng.randrange(COLD_REGION_BYTES // 16)
            for addr in range(offset, offset + COLD_CHUNK_BYTES, 4):
                yield addr


@lru_cache(maxsize=None)
def cache_study(size_bytes: int, prefetch: bool,
                point_ops: int = 150) -> CacheStudyResult:
    """Run the synthetic ECDSA trace through the real cache simulator."""
    config = ICacheConfig(size_bytes=size_bytes, prefetch=prefetch)
    stats = CoreStats()
    cache = ICache(config, stats)
    extra_stalls = 0
    for addr in ecdsa_instruction_trace(point_ops):
        extra_stalls += cache.access(addr)
    return CacheStudyResult(
        config=config,
        accesses=stats.icache_accesses,
        misses=stats.icache_misses,
        prefetch_hits=stats.prefetch_hits,
        rom_line_reads=stats.rom_line_reads,
        extra_stall_cycles=extra_stalls,
    )


def miss_profile() -> dict[tuple[int, bool], CacheStudyResult]:
    """The Fig. 7.12 sweep: 1/2/4/8 KB, with and without prefetch."""
    results = {}
    for size_kb in (1, 2, 4, 8):
        for prefetch in (False, True):
            results[(size_kb, prefetch)] = cache_study(size_kb * 1024,
                                                       prefetch)
    return results
