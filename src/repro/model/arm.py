"""ARM Cortex-M3 reference points (paper Table 7.5).

The paper compares the FFAU against a Cortex-M3 running the same
Montgomery multiplications at 100 MHz / 0.9 V; the table below embeds the
published measurements verbatim (they are a comparison baseline, not a
system under test -- DESIGN.md substitution table)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArmReference:
    key_bits: int
    exec_time_ns: float
    average_power_uw: float

    @property
    def energy_nj(self) -> float:
        return self.exec_time_ns * self.average_power_uw * 1e-6


#: Table 7.5: average power and energy per modular multiplication.
ARM_CORTEX_M3: dict[int, ArmReference] = {
    192: ArmReference(192, 13_870, 4_500),
    256: ArmReference(256, 23_010, 4_500),
    384: ArmReference(384, 48_530, 4_500),
}


def arm_energy_nj(key_bits: int) -> float:
    return ARM_CORTEX_M3[key_bits].energy_nj
