"""Whole-operation latency and energy model (DESIGN.md Section 5).

``SystemModel`` produces, for any (curve, configuration) pair, the cycle
count and the activity vector of one ECDSA sign or verify, then converts
activity into an :class:`~repro.energy.accounting.EnergyReport` using the
calibrated coefficients.  Software configurations compose measured kernel
costs with exact operation counts; the Monte and Billie paths use their
coprocessor timing machines directly.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, fields as dc_fields
from functools import lru_cache

from repro.accel.billie import Billie, BillieConfig
from repro.accel.monte import Monte
from repro.ec.curves import get_curve
from repro.ecdsa import generate_keypair
from repro.energy.accounting import EnergyBreakdown, EnergyReport
from repro.energy.calibration import CALIBRATION, Calibration
from repro.energy.components import FFAUPower
from repro.energy.technology import SYSTEM_CLOCK_NS
from repro.fields.inversion import fermat_prime_opcounts
from repro.model.configs import MicroarchConfig, get_config
from repro.model.costs import OpCost, software_costs
from repro.model.icache_model import cache_study
from repro.model.opcount import ecdsa_opcounts

#: Fixed per-primitive software cycles outside the big-number math:
#: SHA-256 of the message, nonce derivation, harness glue.
ECDSA_FIXED_CYCLES = 14_000.0

#: Montgomery-domain conversions per primitive when Monte is used
#: (operands in, result out), charged as extra accelerator
#: multiplications.
MONT_DOMAIN_MULS = 8

#: Pete instructions spent issuing/steering one accelerated field op.
MONTE_ISSUE_INSTRS = 6.0
#: Operand-load reuse achieved by Monte's forwarding path inside point
#: routines (a result is often the next op's operand).
MONTE_REUSE_FRACTION = 0.5


@dataclass
class Activity:
    """Event counts of one simulated primitive."""

    cycles: float = 0.0
    pete_active: float = 0.0
    pete_stall: float = 0.0
    rom_word_reads: float = 0.0
    rom_line_reads: float = 0.0
    ram_reads: float = 0.0
    ram_writes: float = 0.0
    icache_accesses: float = 0.0
    icache_fills: float = 0.0
    # Monte
    ffau_busy: float = 0.0
    ffau_idle: float = 0.0
    dma_words: float = 0.0
    monte_issues: float = 0.0
    # Billie
    billie_busy: float = 0.0
    billie_idle: float = 0.0
    billie_ram_words: float = 0.0


@dataclass(frozen=True)
class OperationLatency:
    """Sign/verify cycle counts (Tables 7.1 / 7.2)."""

    curve: str
    config: str
    sign_cycles: float
    verify_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.sign_cycles + self.verify_cycles


class SystemModel:
    """The paper's evaluation engine."""

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration

    @property
    def fingerprint(self) -> str:
        """Content hash of the calibration in effect (cache identity)."""
        return self.cal.fingerprint()

    # ------------------------------------------------------------------
    # Activity synthesis
    # ------------------------------------------------------------------

    def activity(self, curve_name: str, config: MicroarchConfig | str,
                 primitive: str, ideal_icache: bool = False) -> Activity:
        if isinstance(config, str):
            config = get_config(config)
        act = _sum_parts(self.activity_parts(curve_name, config, primitive))
        act.pete_stall = max(0.0, act.cycles - act.pete_active)
        if config.accelerator == "monte":
            act.ffau_idle = max(0.0, act.cycles - act.ffau_busy)
        elif config.accelerator == "billie":
            act.billie_idle = max(0.0, act.cycles - act.billie_busy)
        self._apply_fetch_path(act, config, ideal_icache)
        return act

    def activity_parts(self, curve_name: str,
                       config: MicroarchConfig | str,
                       primitive: str) -> dict[str, Activity]:
        """Per-operation-class decomposition of one primitive's activity.

        The parts (one per field/order operation class plus the fixed
        SHA-256/glue overhead) sum -- in insertion order -- to exactly
        the accumulation :meth:`activity` performs, *before* the
        stall/idle finalization and the fetch-path conversion, which are
        whole-run quantities.  :mod:`repro.trace.opprofile` prices the
        parts into the per-symbol energy profile of a full primitive.
        """
        if isinstance(config, str):
            config = get_config(config)
        self._check_support(curve_name, config)
        if config.accelerator == "monte":
            return self._monte_parts(curve_name, config, primitive)
        if config.accelerator == "billie":
            return self._billie_parts(curve_name, config, primitive)
        return self._software_parts(curve_name, config, primitive)

    @staticmethod
    def _check_support(curve_name: str, config: MicroarchConfig) -> None:
        is_binary = curve_name.startswith("B")
        if is_binary and not config.supports_binary:
            raise ValueError(f"{config.name} does not support binary fields")
        if not is_binary and not config.supports_prime:
            raise ValueError(f"{config.name} does not support prime fields")

    # -- software path -------------------------------------------------------

    def _software_parts(self, curve_name: str, config: MicroarchConfig,
                        primitive: str) -> dict[str, Activity]:
        counts = getattr(ecdsa_opcounts(curve_name), primitive)
        costs = software_costs(curve_name, config)
        parts: dict[str, Activity] = {}
        for op, n in {**counts.field_ops, **counts.order_ops}.items():
            if not n:
                continue
            cost: OpCost = costs[op].scaled(n)
            part = parts[op] = Activity()
            part.cycles = cost.cycles
            part.pete_active = cost.instructions
            part.ram_reads = cost.ram_reads
            part.ram_writes = cost.ram_writes
        fixed = parts["fixed"] = Activity()
        fixed.cycles = ECDSA_FIXED_CYCLES
        fixed.pete_active = 0.92 * ECDSA_FIXED_CYCLES
        fixed.ram_reads = 0.2 * ECDSA_FIXED_CYCLES
        return parts

    # -- Monte path ------------------------------------------------------------

    def _monte_parts(self, curve_name: str, config: MicroarchConfig,
                     primitive: str) -> dict[str, Activity]:
        curve = get_curve(curve_name)
        counts = getattr(ecdsa_opcounts(curve_name), primitive)
        monte = _shared_monte(curve.field.p)
        k = monte.k
        mul_eff = monte.field_op_pattern_cycles("mul", MONTE_REUSE_FRACTION)
        add_eff = monte.field_op_pattern_cycles("add", MONTE_REUSE_FRACTION)
        mul_ffau = monte.ffau.montmul_cycles(k)
        add_ffau = monte.ffau.addsub_cycles(k)

        n_mul = (counts.field("fmul") + counts.field("fsqr")
                 + MONT_DOMAIN_MULS)
        n_add = counts.field("fadd") + counts.field("fsub")
        # Fermat inversion expands into FFAU multiplications
        inv_sqr, inv_mul = fermat_prime_opcounts(curve.field.p)
        n_mul += counts.field("finv") * (inv_sqr + inv_mul)

        parts: dict[str, Activity] = {}
        field = parts["field-ops (Monte)"] = Activity()
        ops = n_mul + n_add
        field.cycles = n_mul * mul_eff + n_add * add_eff
        field.ffau_busy = n_mul * mul_ffau + n_add * add_ffau
        field.monte_issues = 4.0 * ops        # lda/ldb/op/st stream
        field.dma_words = ops * (2.0 - MONTE_REUSE_FRACTION + 1.0) * k
        field.pete_active = MONTE_ISSUE_INSTRS * ops
        field.ram_reads = ops * (2.0 - MONTE_REUSE_FRACTION) * k
        field.ram_writes = ops * k
        # order arithmetic runs on Pete with baseline software costs --
        # unless the Section 8 variant maps the group-order inversion
        # onto Monte (reconfigured for the modulus n) as Fermat muls
        sw_costs = software_costs(curve_name, "baseline")
        for op, n in counts.order_ops.items():
            if not n:
                continue
            part = parts[op] = Activity()
            if op == "oinv" and config.monte_order_inversion:
                inv_sqr_n, inv_mul_n = fermat_prime_opcounts(curve.n)
                muls = n * (inv_sqr_n + inv_mul_n + 2)  # + domain swap
                part.cycles = muls * mul_eff
                part.ffau_busy = muls * mul_ffau
                part.monte_issues = 4.0 * muls
                part.dma_words = muls * 1.0 * k  # operands mostly forwarded
                part.pete_active = MONTE_ISSUE_INSTRS * muls
                continue
            cost = sw_costs[op].scaled(n)
            part.cycles = cost.cycles
            part.pete_active = cost.instructions
            part.ram_reads = cost.ram_reads
            part.ram_writes = cost.ram_writes
        fixed = parts["fixed"] = Activity()
        fixed.cycles = ECDSA_FIXED_CYCLES
        fixed.pete_active = 0.92 * ECDSA_FIXED_CYCLES
        return parts

    # -- Billie path --------------------------------------------------------------

    def _billie_parts(self, curve_name: str, config: MicroarchConfig,
                      primitive: str) -> dict[str, Activity]:
        counts = getattr(ecdsa_opcounts(curve_name), primitive)
        run = _billie_primitive_run(curve_name, primitive)
        parts: dict[str, Activity] = {}
        scalar = parts["scalar-mul (Billie)"] = Activity()
        scalar.cycles = run["cycles"]
        scalar.billie_busy = run["busy_cycles"]
        scalar.billie_ram_words = run["ram_words"]
        scalar.pete_active = run["instructions"]
        scalar.ram_reads = run["ram_words"] * 0.5
        scalar.ram_writes = run["ram_words"] * 0.5
        # order arithmetic on Pete
        sw_costs = software_costs(curve_name, "baseline")
        for op, n in counts.order_ops.items():
            if not n:
                continue
            cost = sw_costs[op].scaled(n)
            part = parts[op] = Activity()
            part.cycles = cost.cycles
            part.pete_active = cost.instructions
            part.ram_reads = cost.ram_reads
            part.ram_writes = cost.ram_writes
        fixed = parts["fixed"] = Activity()
        fixed.cycles = ECDSA_FIXED_CYCLES
        fixed.pete_active = 0.92 * ECDSA_FIXED_CYCLES
        return parts

    # -- fetch path ---------------------------------------------------------------

    def _apply_fetch_path(self, act: Activity, config: MicroarchConfig,
                          ideal_icache: bool) -> None:
        """Turn instruction counts into ROM/cache traffic."""
        fetches = act.pete_active
        if ideal_icache:
            act.icache_accesses = fetches
            return
        if config.icache is None:
            act.rom_word_reads += fetches
            return
        study = cache_study(config.icache.size_bytes,
                            config.icache.prefetch)
        act.icache_accesses = fetches
        miss_ratio = study.misses / study.accesses
        stall_ratio = study.effective_miss_rate
        act.icache_fills = fetches * miss_ratio
        act.rom_line_reads += fetches * (study.rom_line_reads
                                         / study.accesses)
        extra_stalls = fetches * stall_ratio * config.icache.miss_penalty
        act.cycles += extra_stalls
        act.pete_stall += extra_stalls

    # ------------------------------------------------------------------
    # Latency (Tables 7.1 / 7.2)
    # ------------------------------------------------------------------

    def latency(self, curve_name: str, config: MicroarchConfig | str
                ) -> OperationLatency:
        config_obj = get_config(config) if isinstance(config, str) else config
        sign = self.activity(curve_name, config_obj, "sign")
        verify = self.activity(curve_name, config_obj, "verify")
        return OperationLatency(curve_name, config_obj.name,
                                sign.cycles, verify.cycles)

    def snapshot(self, curve_name: str, config: MicroarchConfig | str
                 ) -> dict:
        """Machine-readable quantities of one (curve, config) pair for
        the regression ledger and gate: sign/verify cycles, sign+verify
        energy, the per-component energy split, and per-operation-class
        cycles from :meth:`activity_parts`."""
        config_obj = get_config(config) if isinstance(config, str) else config
        lat = self.latency(curve_name, config_obj)
        rep = self.report(curve_name, config_obj)
        return {
            "sign_cycles": lat.sign_cycles,
            "verify_cycles": lat.verify_cycles,
            "energy_uj": rep.total_uj,
            "components": {c: rep.component_uj(c)
                           for c in rep.breakdown.components},
            "parts": {part: act.cycles for part, act in
                      self.activity_parts(curve_name, config_obj,
                                          "sign").items()},
        }

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------

    def report(self, curve_name: str, config: MicroarchConfig | str,
               primitive: str = "sign+verify",
               ideal_icache: bool = False) -> EnergyReport:
        config_obj = get_config(config) if isinstance(config, str) else config
        if primitive == "sign+verify":
            sign = self.report(curve_name, config_obj, "sign", ideal_icache)
            verify = self.report(curve_name, config_obj, "verify",
                                 ideal_icache)
            return sign.merged(
                verify, f"{curve_name}/{config_obj.name}/sign+verify")
        act = self.activity(curve_name, config_obj, primitive, ideal_icache)
        return self._energy(curve_name, config_obj, act,
                            f"{curve_name}/{config_obj.name}/{primitive}",
                            ideal_icache)

    def _energy(self, curve_name: str, config: MicroarchConfig,
                act: Activity, label: str,
                ideal_icache: bool) -> EnergyReport:
        cal = self.cal
        curve = get_curve(curve_name)
        time_s = act.cycles * SYSTEM_CLOCK_NS * 1e-9
        bd = EnergyBreakdown()

        # --- Pete core
        pete_factor = 1.0
        if config.prime_isa_ext:
            pete_factor *= cal.pete.isa_ext_factor
        if config.binary_isa_ext:
            pete_factor *= cal.pete.binary_ext_factor
        bd.add_dynamic("Pete", (act.pete_active * cal.pete.active_pj
                                * pete_factor
                                + act.pete_stall * cal.pete.stall_pj) / 1e3)
        bd.add_static("Pete", cal.pete.static_uw * time_s * 1e3)

        # --- program memory (mask ROM, or flash for the Section 8 study)
        if config.flash_program_memory:
            from repro.energy.memory_model import flash_program_memory

            rom32 = flash_program_memory(line_port=False)
            rom128 = flash_program_memory(line_port=True)
        else:
            rom32 = cal.rom(line_port=False)
            rom128 = cal.rom(line_port=True)
        bd.add_dynamic("ROM", (act.rom_word_reads * rom32.read_energy_pj()
                               + act.rom_line_reads
                               * rom128.read_energy_pj(128)) / 1e3)

        # --- RAM (dual-ported when an accelerator shares it)
        ram = cal.ram(dual_port=config.accelerator is not None)
        bd.add_dynamic("RAM", (act.ram_reads * ram.read_energy_pj()
                               + act.ram_writes * ram.write_energy_pj())
                       / 1e3)
        bd.add_static("RAM", ram.leakage_uw() * time_s * 1e3)

        # --- uncore + instruction cache
        if config.icache is not None or ideal_icache:
            size = (config.icache.size_bytes if config.icache is not None
                    else 4096)
            icache = cal.icache(size)
            access_pj = icache.read_energy_pj()
            if (config.icache is not None and config.icache.prefetch
                    and not ideal_icache):
                # stream-buffer tag compare on every fetch
                access_pj *= 1.12
            nj = (act.icache_accesses * access_pj
                  + act.icache_fills * icache.write_energy_pj(128)) / 1e3
            if not ideal_icache:
                nj += act.pete_active * cal.uncore.active_pj / 1e3
                bd.add_static("Uncore", cal.uncore.static_uw * time_s * 1e3)
            bd.add_dynamic("Uncore", nj)
            bd.add_static("Uncore", icache.leakage_uw() * time_s * 1e3)

        # --- Monte
        if config.accelerator == "monte":
            ffau_power = FFAUPower(32)
            idle_pj = (cal.monte.ffau_idle_gated_pj if config.clock_gating
                       else cal.monte.ffau_idle_pj)
            dyn = (act.ffau_busy
                   * ffau_power.dynamic_pj_per_cycle(curve.bits)
                   + act.ffau_idle * idle_pj
                   + act.dma_words * cal.monte.dma_word_pj
                   + act.monte_issues * cal.monte.issue_pj) / 1e3
            bd.add_dynamic("Monte", dyn)
            static_uw = cal.monte.static_uw
            if config.clock_gating:
                # power gating also cuts the idle fraction's leakage
                idle_frac = act.ffau_idle / max(1.0, act.cycles)
                static_uw *= 1.0 - 0.8 * idle_frac
            bd.add_static("Monte", static_uw * time_s * 1e3)

        # --- Billie
        if config.accelerator == "billie":
            m = curve.bits
            sram = config.billie_sram_regfile
            dyn = (act.billie_busy * cal.billie.active_pj(m, sram)
                   + act.billie_idle
                   * cal.billie.idle_pj(m, sram,
                                        gated=config.clock_gating)) / 1e3
            bd.add_dynamic("Billie", dyn)
            static_uw = cal.billie.static_uw(m, sram)
            if config.clock_gating:
                idle_frac = act.billie_idle / max(1.0, act.cycles)
                static_uw *= 1.0 - 0.8 * idle_frac
            bd.add_static("Billie", static_uw * time_s * 1e3)

        return EnergyReport(label, int(act.cycles), bd)


def _sum_parts(parts: dict[str, Activity]) -> Activity:
    """Field-wise sum of activity parts, in insertion order."""
    total = Activity()
    for part in parts.values():
        for f in dc_fields(Activity):
            setattr(total, f.name,
                    getattr(total, f.name) + getattr(part, f.name))
    return total


# ---------------------------------------------------------------------------
# Shared/cached heavy objects
# ---------------------------------------------------------------------------

#: Session-installed model (see :func:`use_model`); ``None`` means the
#: process-wide default-calibration model.  A :class:`ContextVar` so
#: concurrent sessions on different threads (or async tasks) see only
#: their own model and cannot restore each other's.
_ACTIVE_MODEL: ContextVar[SystemModel | None] = ContextVar(
    "repro_active_model", default=None)


@lru_cache(maxsize=1)
def _default_model() -> SystemModel:
    return SystemModel()


def shared_model() -> SystemModel:
    """The model artifact producers consult.

    Defaults to a process-wide :class:`SystemModel` built from the
    default :data:`~repro.energy.calibration.CALIBRATION`; a session
    opened via :func:`repro.api.open_session` (or :func:`use_model`)
    temporarily installs its own model here, so every table/figure
    producer prices against the session's calibration without threading
    a model argument through each renderer.
    """
    model = _ACTIVE_MODEL.get()
    return model if model is not None else _default_model()


@contextmanager
def use_model(model: SystemModel):
    """Install ``model`` as the shared model for the enclosed block."""
    token = _ACTIVE_MODEL.set(model)
    try:
        yield model
    finally:
        _ACTIVE_MODEL.reset(token)


@lru_cache(maxsize=None)
def _shared_monte(p: int) -> Monte:
    return Monte(p)


@lru_cache(maxsize=None)
def _billie_primitive_run(curve_name: str, primitive: str) -> dict:
    """Drive one full primitive's scalar multiplication on Billie."""
    from repro.model.billie_driver import run_sliding_window, run_twin

    curve = get_curve(curve_name)
    d, public = generate_keypair(curve, seed=b"opcount")
    billie = Billie(BillieConfig(m=curve.bits))
    if primitive == "sign":
        run = run_sliding_window(curve, d, curve.generator, billie)
    else:
        # verification-shaped twin multiplication
        u1 = d | 1
        u2 = (d >> 1) | 1
        run = run_twin(curve, u1, curve.generator, u2, public, billie)
    return {
        "cycles": run.cycles,
        "busy_cycles": billie.stats.busy_cycles,
        "instructions": run.instructions,
        "ram_words": billie.stats.ram_words,
    }
