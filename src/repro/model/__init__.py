"""Whole-system ECDSA latency/energy models (DESIGN.md Section 5).

``SystemModel`` composes measured kernel cycles (:mod:`repro.kernels`),
exact ECDSA operation counts (:mod:`repro.model.opcount`), the
coprocessor timing machines (:mod:`repro.accel`) and the calibrated
energy coefficients (:mod:`repro.energy`) into per-operation cycle and
energy reports for each of the paper's microarchitecture configurations.
"""

from repro.model.configs import ALL_CONFIGS, MicroarchConfig, get_config
from repro.model.system import SystemModel

__all__ = ["MicroarchConfig", "ALL_CONFIGS", "get_config", "SystemModel"]
