"""The evaluated microarchitecture configurations (paper Fig. 1.1).

Six points on the reconfigurability/efficiency spectrum, for each field
family where applicable:

========================  =========================================
name                      description
========================  =========================================
``baseline``              Pete + ROM + RAM, pure software (Section 5.1)
``isa_ext``               + MADDU/M2ADDU/ADDAU/SHA (prime, Section 5.2.1)
``isa_ext_ic``            prime ISA extensions + 4 KB I-cache (Section 5.3)
``binary_isa``            + MULGF2/MADDGF2 (cumulative, Section 5.2.2)
``monte``                 Pete + the microcoded GF(p) accelerator (5.4)
``billie``                Pete + the GF(2^m) accelerator (5.5)
========================  =========================================

I-cache geometry is parameterizable for the Section 7.5 sweep via
:func:`with_icache`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.pete.icache import ICacheConfig


@dataclass(frozen=True)
class MicroarchConfig:
    """One hardware/software configuration."""

    name: str
    description: str
    prime_isa_ext: bool = False
    binary_isa_ext: bool = False
    icache: ICacheConfig | None = None
    accelerator: str | None = None     # None | "monte" | "billie"
    supports_prime: bool = True
    supports_binary: bool = True
    # --- the paper's Section 8 future-work switches -------------------
    #: gate accelerator (and core) clocks while idle
    clock_gating: bool = False
    #: implement Billie's register file in SRAM instead of flip-flops
    billie_sram_regfile: bool = False
    #: run the group-order inversion on Monte via Fermat's little
    #: theorem instead of the extended Euclidean algorithm on Pete
    monte_order_inversion: bool = False
    #: program memory is flash EEPROM rather than mask ROM
    flash_program_memory: bool = False

    @property
    def has_icache(self) -> bool:
        return self.icache is not None

    def label(self) -> str:
        return self.name


BASELINE = MicroarchConfig(
    name="baseline",
    description="Pete, 256KB ROM, 16KB RAM, pure software",
)

ISA_EXT = MicroarchConfig(
    name="isa_ext",
    description="Pete with prime-field accumulator ISA extensions",
    prime_isa_ext=True,
    supports_binary=False,
)

ISA_EXT_IC = MicroarchConfig(
    name="isa_ext_ic",
    description="prime ISA extensions + 4KB direct-mapped I-cache",
    prime_isa_ext=True,
    icache=ICacheConfig(size_bytes=4096),
    supports_binary=False,
)

BINARY_ISA = MicroarchConfig(
    name="binary_isa",
    description="Pete with carry-less (binary) ISA extensions",
    prime_isa_ext=True,
    binary_isa_ext=True,
    supports_prime=False,
)

MONTE = MicroarchConfig(
    name="monte",
    description="Pete with the microcoded GF(p) accelerator 'Monte'",
    accelerator="monte",
    supports_binary=False,
)

BILLIE = MicroarchConfig(
    name="billie",
    description="Pete with the GF(2^m) accelerator 'Billie'",
    accelerator="billie",
    supports_prime=False,
)

ALL_CONFIGS: tuple[MicroarchConfig, ...] = (
    BASELINE, ISA_EXT, ISA_EXT_IC, BINARY_ISA, MONTE, BILLIE,
)

# --- Section 8 future-work variants (not part of the paper's grid) -----

MONTE_GATED = replace(
    MONTE, name="monte_gated", clock_gating=True,
    description="Monte with clock/power gating of the idle FFAU",
)

MONTE_OINV = replace(
    MONTE, name="monte_oinv", monte_order_inversion=True,
    description="Monte also accelerating the group-order inversion "
                "(the Section 8 Amdahl's-law fix)",
)

BILLIE_GATED = replace(
    BILLIE, name="billie_gated", clock_gating=True,
    description="Billie gated off during the 62% of ECDSA it idles",
)

BILLIE_SRAM = replace(
    BILLIE, name="billie_sram", billie_sram_regfile=True,
    description="Billie with an SRAM register file instead of flip-flops",
)

BILLIE_SRAM_GATED = replace(
    BILLIE, name="billie_sram_gated", billie_sram_regfile=True,
    clock_gating=True,
    description="Billie with SRAM register file and clock gating",
)

BASELINE_FLASH = replace(
    BASELINE, name="baseline_flash", flash_program_memory=True,
    description="baseline with flash EEPROM program memory",
)

ISA_EXT_IC_FLASH = replace(
    ISA_EXT_IC, name="isa_ext_ic_flash", flash_program_memory=True,
    description="ISA extensions + 4KB I-cache over flash program memory",
)

FUTURE_CONFIGS: tuple[MicroarchConfig, ...] = (
    MONTE_GATED, MONTE_OINV, BILLIE_GATED, BILLIE_SRAM,
    BILLIE_SRAM_GATED, BASELINE_FLASH, ISA_EXT_IC_FLASH,
)

_BY_NAME = {cfg.name: cfg for cfg in ALL_CONFIGS + FUTURE_CONFIGS}


def get_config(name: str) -> MicroarchConfig:
    if name not in _BY_NAME:
        raise KeyError(
            f"unknown config {name!r}; choose from {sorted(_BY_NAME)}"
        )
    return _BY_NAME[name]


def with_icache(base: MicroarchConfig, size_bytes: int,
                prefetch: bool = False) -> MicroarchConfig:
    """A config variant with a different I-cache geometry (Fig. 7.12)."""
    icache = ICacheConfig(size_bytes=size_bytes, prefetch=prefetch)
    suffix = f"ic{size_bytes // 1024}k" + ("p" if prefetch else "")
    return replace(base, name=f"{base.name}_{suffix}", icache=icache)
