"""Exact ECDSA field-operation counts (DESIGN.md Section 5, step 2).

The *actual* ECDSA implementation is executed with instrumented fields, so
the per-curve operation counts entering the cycle model are exact, not
estimated: a sign is one sliding-window scalar multiplication (with its
3P/5P precomputation) plus order arithmetic; a verify is one twin
multiplication plus order arithmetic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

from repro.ec.curves import get_curve
from repro.ecdsa.core import sign_digest, verify_digest
from repro.ecdsa import generate_keypair

#: Field-op categories the cycle model prices.
FIELD_OPS = ("fmul", "fsqr", "fadd", "fsub", "finv")
ORDER_OPS = ("omul", "oadd", "oinv")


@dataclass(frozen=True)
class OpCounts:
    """Operation counts for one ECDSA primitive (sign or verify)."""

    label: str
    field_ops: dict[str, int]
    order_ops: dict[str, int]

    def field(self, op: str) -> int:
        return self.field_ops.get(op, 0)

    def order(self, op: str) -> int:
        return self.order_ops.get(op, 0)

    @property
    def total_field_muls(self) -> int:
        return self.field("fmul") + self.field("fsqr")


@dataclass(frozen=True)
class EcdsaOpCounts:
    sign: OpCounts
    verify: OpCounts


@lru_cache(maxsize=None)
def ecdsa_opcounts(curve_name: str) -> EcdsaOpCounts:
    """Measure sign/verify operation counts on the given curve.

    Uses a fixed key/digest so the recorded scalar bit patterns (and thus
    counts) are deterministic; window densities vary by <2 % across
    scalars, which is below the model's resolution.
    """
    curve = get_curve(curve_name)
    d, public = generate_keypair(curve, seed=b"opcount")
    digest = hashlib.sha256(b"opcount workload " + curve_name.encode()).digest()

    curve.reset_counters()
    sig = sign_digest(curve, d, digest)
    sign_counts = OpCounts(
        "sign",
        _clean(curve.field.counter.snapshot(), FIELD_OPS),
        _clean(curve.order_counter.snapshot(), ORDER_OPS),
    )

    curve.reset_counters()
    ok = verify_digest(curve, public, digest, sig)
    assert ok, "instrumented verification failed"
    verify_counts = OpCounts(
        "verify",
        _clean(curve.field.counter.snapshot(), FIELD_OPS),
        _clean(curve.order_counter.snapshot(), ORDER_OPS),
    )
    curve.reset_counters()
    return EcdsaOpCounts(sign_counts, verify_counts)


def _clean(snapshot: dict[str, int], keep: tuple[str, ...]) -> dict[str, int]:
    return {op: snapshot.get(op, 0) for op in keep}


@lru_cache(maxsize=None)
def scalar_mult_point_ops(curve_name: str) -> dict[str, int]:
    """Point-operation counts of one sliding-window scalar multiplication
    (doubles/adds), used by the Billie driver and Fig. 7.14."""
    from repro.ec.scalar import fractional_naf

    curve = get_curve(curve_name)
    d, _ = generate_keypair(curve, seed=b"opcount")
    digits = fractional_naf(d)
    doubles = len(digits) - 1
    adds = sum(1 for digit in digits if digit)
    return {"doubles": doubles, "adds": adds, "precompute_adds": 3}
