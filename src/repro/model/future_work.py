"""The paper's Section 8 future-work studies, carried out.

The conclusions chapter names four concrete follow-ups; each is a
configuration variant here, priced by the same system model:

1. **SRAM register file for Billie** -- "over half of Billie's energy is
   being consumed in the synthesized register file.  Thus, we would like
   to evaluate the energy consumption of Billie with a register file
   implemented in more efficient memory (SRAM) technology."
2. **Clock/power gating** -- "we plan on modeling our system such that
   we can turn off Billie when she is not in use" (and ungated clocks
   are called out for Pete and the FFAU in Sections 7.1/7.4).
3. **Accelerating the group-order inversion** -- "the protocol
   arithmetic modulo the group order (inversion specifically) becomes
   the limiting factor ... Amdahl's law strikes again.  Therefore, we
   plan on investigating various methods for accelerating the modular
   inversion."  The ``monte_oinv`` variant reconfigures Monte for the
   modulus n (its microcode is parameterized exactly for this) and runs
   the inversion as a Fermat multiplication chain.
4. **Flash program memory** -- "we would like to model our system
   assuming a flash EEPROM memory technology in place of the ROM",
   since real IMDs need field-reprogrammable firmware.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.model.system import SystemModel


@dataclass(frozen=True)
class VariantResult:
    """One future-work variant against its paper-configuration base."""

    curve: str
    base_config: str
    variant_config: str
    base_uj: float
    variant_uj: float

    @property
    def saving_percent(self) -> float:
        return 100.0 * (1.0 - self.variant_uj / self.base_uj)


def _compare(model: SystemModel, curve: str, base: str,
             variant: str) -> VariantResult:
    return VariantResult(
        curve, base, variant,
        model.report(curve, base).total_uj,
        model.report(curve, variant).total_uj,
    )


@lru_cache(maxsize=1)
def billie_register_file_study() -> list[VariantResult]:
    """Future work #1/#2: Billie's register file and idle power.

    The SRAM file attacks the >50 % register-file share; gating attacks
    the 62 % idle time.  Combined, they address the scaling failure the
    paper diagnoses ("our binary-field accelerator does not scale well
    in terms of energy efficiency").
    """
    model = SystemModel()
    out = []
    for curve in ("B-163", "B-283", "B-571"):
        for variant in ("billie_sram", "billie_gated", "billie_sram_gated"):
            out.append(_compare(model, curve, "billie", variant))
    return out


@lru_cache(maxsize=1)
def monte_gating_study() -> list[VariantResult]:
    """Clock gating the FFAU while Pete runs the protocol arithmetic."""
    model = SystemModel()
    return [_compare(model, curve, "monte", "monte_gated")
            for curve in ("P-192", "P-256", "P-521")]


@lru_cache(maxsize=1)
def order_inversion_study() -> list[VariantResult]:
    """Future work #3: map the group-order inversion onto Monte.

    Monte's constant RAM holds the modulus parameters, so pointing it at
    n instead of p is a CTC2 reconfiguration, not new hardware -- the
    payoff of the microcoded design.
    """
    model = SystemModel()
    return [_compare(model, curve, "monte", "monte_oinv")
            for curve in ("P-192", "P-256", "P-521")]


@lru_cache(maxsize=1)
def flash_memory_study() -> list[VariantResult]:
    """Future work #4: flash program store.

    Flash reads cost ~2.6x mask-ROM reads, which roughly doubles the
    uncached baseline's energy -- and makes the instruction cache far
    more valuable than the ROM-based Section 7.5 sweep suggested.
    """
    model = SystemModel()
    out = [_compare(model, "P-192", "baseline", "baseline_flash")]
    # the I-cache's value under flash: compare flash-without-cache
    # against flash-with-cache
    flash_nocache = model.report("P-192", "baseline_flash").total_uj
    flash_cache = model.report("P-192", "isa_ext_ic_flash").total_uj
    out.append(VariantResult("P-192", "baseline_flash",
                             "isa_ext_ic_flash", flash_nocache,
                             flash_cache))
    return out


def summary() -> dict[str, list[VariantResult]]:
    """All four studies, keyed by name (the bench prints this)."""
    return {
        "billie_register_file": billie_register_file_study(),
        "monte_gating": monte_gating_study(),
        "order_inversion": order_inversion_study(),
        "flash_memory": flash_memory_study(),
    }
