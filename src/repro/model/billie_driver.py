"""Register-level ECDSA scalar multiplication on Billie (Section 5.5).

The driver emits the exact COP2 instruction stream Pete would feed
Billie: Lopez-Dahab point doubling / mixed addition over the 16-entry
register file, sliding-window and twin scalar multiplication with the
precomputed points resident in registers, the Montgomery ladder of
Fig. 7.14, and Itoh-Tsujii inversions for affine conversions.  Billie's
timing machine accumulates cycles while its functional registers carry
the real field values -- results are checked against the pure-software
scalar multiplication.

Register budget (why the paper sized the file at 16 entries): the curve
constant b, a zero register, the accumulator X/Y/Z, up to four table
points (x, y), a negation scratch, plus the two or three temporaries of
the LD formulas -- the formula inputs X/Y free up mid-sequence, which is
what makes the twin table fit:

    single:  b, P, 3P, 5P, X/Y/Z, negY, 3 temps   -> 14 peak
    twin:    b, P, Q, P+Q, P-Q, X/Y/Z, negY, 3 t  -> 16 peak
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.billie import Billie, BillieConfig
from repro.ec.curves import Curve
from repro.ec.point import INFINITY, AffinePoint, affine_add, affine_neg
from repro.ec.scalar import fractional_naf, naf
from repro.fields.inversion import itoh_tsujii_chain

#: Pete-side loop/control instructions between point operations (window
#: scanning, branch, pointer upkeep) -- they pace the issue stream.
CONTROL_GAP_CYCLES = 10


class _RegFile:
    """Tiny allocator over Billie's 16 registers."""

    def __init__(self, billie: Billie) -> None:
        self.billie = billie
        self.free = list(range(billie.config.n_registers))
        self.peak = 0

    def alloc(self) -> int:
        if not self.free:
            raise RuntimeError("Billie register file exhausted")
        reg = self.free.pop(0)
        in_use = self.billie.config.n_registers - len(self.free)
        self.peak = max(self.peak, in_use)
        return reg

    def release(self, *regs: int) -> None:
        for reg in regs:
            if reg in self.free:
                raise RuntimeError(f"double release of r{reg}")
            self.free.append(reg)


@dataclass
class BillieRun:
    """Result of one driven operation."""

    result: AffinePoint
    cycles: int
    instructions: int
    peak_registers: int = 0


class BillieDriver:
    """Drives point arithmetic on a Billie instance for one curve."""

    def __init__(self, billie: Billie, curve: Curve) -> None:
        if not curve.is_binary or curve.bits != billie.config.m:
            raise ValueError("Billie is fabricated for one specific field")
        if curve.a != 1:
            raise ValueError("the drivers assume a = 1 (all NIST B-curves)")
        self.b = billie
        self.curve = curve
        self.regs = _RegFile(billie)
        self.instructions = 0
        self.r_b = self.alloc_load(curve.b)       # curve constant b

    # -- primitive helpers ------------------------------------------------

    def alloc_load(self, value: int) -> int:
        """Allocate a Billie register and load ``value`` into it.

        Public entry point for harnesses (e.g. the side-channel model)
        that stage field elements before driving point operations.
        """
        reg = self.regs.alloc()
        self.load(reg, value)
        return reg

    def _mul(self, fd: int, fs: int, ft: int) -> None:
        self.b.issue_mul(fd, fs, ft)
        self.instructions += 1

    def _sqr(self, fd: int, ft: int) -> None:
        self.b.issue_sqr(fd, ft)
        self.instructions += 1

    def _add(self, fd: int, fs: int, ft: int) -> None:
        self.b.issue_add(fd, fs, ft)
        self.instructions += 1

    def load(self, fd: int, value: int) -> None:
        """Load ``value`` into Billie register ``fd`` (one COP2 issue)."""
        self.b.issue_load(fd, value)
        self.instructions += 1

    def _gap(self) -> None:
        """Pete-side control work between point operations."""
        self.b.now += CONTROL_GAP_CYCLES
        self.instructions += CONTROL_GAP_CYCLES

    # -- field inversion (Itoh-Tsujii, Section 4.2.4) ----------------------

    def inverse(self, fd: int, fs: int) -> None:
        """BR[fd] = BR[fs]^-1 via the addition-chain Fermat inversion.

        Needs two scratch registers; fd must differ from fs.
        """
        if fd == fs:
            raise ValueError("in-place inversion unsupported")
        m = self.curve.bits
        beta = self.regs.alloc()
        tmp = self.regs.alloc()
        # beta_1 lives in fs itself; the chain's first step is always
        # (1, 1), so beta_2 = fs^2 * fs seeds the running register
        first = True
        for i, j in itoh_tsujii_chain(m):
            # beta_{i+j} = beta_i^(2^j) * beta_j; the chain only ever
            # multiplies by beta_i itself (j == i) or by beta_1 (j == 1)
            self._sqr(tmp, fs if first else beta)
            for _ in range(j - 1):
                self._sqr(tmp, tmp)
            self._mul(beta, tmp, fs if j == 1 or first else beta)
            first = False
        self._sqr(fd, beta)
        self.regs.release(beta, tmp)

    # -- LD point operations (mirror repro.ec.lopez_dahab) ------------------

    def double(self, x: int, y: int, z: int) -> None:
        """(X, Y, Z) <- 2 * (X, Y, Z) in place; 2 temporaries."""
        t0 = self.regs.alloc()
        t1 = self.regs.alloc()
        self._sqr(t0, z)            # Z1^2
        self._sqr(t1, x)            # X1^2          (X free)
        self._mul(z, t0, t1)        # Z3 = X1^2 Z1^2
        self._sqr(t0, t0)           # Z1^4
        self._mul(t0, self.r_b, t0)  # b Z1^4
        self._sqr(y, y)             # Y1^2          (in place)
        self._sqr(t1, t1)           # X1^4
        self._add(x, t1, t0)        # X3 = X1^4 + b Z1^4
        self._add(y, y, t0)         # Y1^2 + b Z1^4
        self._add(y, y, z)          # + a Z3 (a = 1)
        self._mul(t0, t0, z)        # b Z1^4 * Z3
        self._mul(t1, x, y)         # X3 * inner
        self._add(y, t0, t1)        # Y3
        self.regs.release(t0, t1)

    def add_mixed(self, x: int, y: int, z: int, qx: int, qy: int
                  ) -> tuple[int, int, int]:
        """(X, Y, Z) + affine(qx, qy); 3 temporaries.

        Uses register renaming instead of a final move: the result lands
        in (t1, y, z) and the old x register is released -- callers must
        adopt the returned register triple.
        """
        t0 = self.regs.alloc()
        t1 = self.regs.alloc()
        t2 = self.regs.alloc()
        self._sqr(t0, z)            # Z1^2
        self._mul(t1, qy, t0)
        self._add(t1, t1, y)        # A             (Y free)
        self._mul(t2, qx, z)
        self._add(t2, t2, x)        # B             (X free)
        self._mul(x, z, t2)         # C   (into freed X)
        self._sqr(y, t2)            # B^2 (into freed Y)
        self._add(t2, x, t0)        # C + a Z1^2 (a = 1)
        self._mul(y, y, t2)         # D
        self._sqr(z, x)             # Z3 = C^2
        self._mul(x, t1, x)         # E
        self._sqr(t1, t1)           # A^2
        self._add(t1, t1, y)
        self._add(t1, t1, x)        # X3 = A^2 + D + E   (in t1)
        self._mul(t0, qx, z)
        self._add(t0, t1, t0)       # F = X3 + x2 Z3
        self._add(x, x, z)          # E + Z3
        self._mul(t0, x, t0)        # (E + Z3) F
        self._add(t2, qx, qy)
        self._sqr(y, z)             # Z3^2
        self._mul(t2, t2, y)        # G
        self._add(y, t0, t2)        # Y3
        self.regs.release(t0, t2, x)
        return t1, y, z

    def to_affine(self, x: int, y: int, z: int) -> AffinePoint:
        """Convert the accumulator to affine: one inversion, 2 mul/sqr."""
        zi = self.regs.alloc()
        self.inverse(zi, z)
        self._mul(x, x, zi)         # X / Z
        self._sqr(zi, zi)
        self._mul(y, y, zi)         # Y / Z^2
        result = AffinePoint(self.b.regs[x], self.b.regs[y])
        self.regs.release(zi)
        return result


# ---------------------------------------------------------------------------
# Scalar multiplication algorithms on Billie
# ---------------------------------------------------------------------------


def _precompute_point(driver: BillieDriver, base_affine: AffinePoint,
                      add_x: int, add_y: int,
                      expect: AffinePoint) -> tuple[int, int]:
    """Compute base + (add_x, add_y) on Billie, return affine regs."""
    regs = driver.regs
    ax, ay, az = regs.alloc(), regs.alloc(), regs.alloc()
    driver.load(ax, base_affine.x)
    driver.load(ay, base_affine.y)
    driver.load(az, 1)
    ax, ay, az = driver.add_mixed(ax, ay, az, add_x, add_y)
    got = driver.to_affine(ax, ay, az)
    assert got == expect, "Billie precomputation diverged"
    regs.release(az)
    return ax, ay


def run_sliding_window(curve: Curve, x: int, p: AffinePoint,
                       billie: Billie | None = None) -> BillieRun:
    """Sliding-window x*P entirely on Billie (signature path).

    3P and 5P are computed on Billie (LD point ops + Itoh-Tsujii
    conversions, all timed) and stay resident in the register file.
    """
    b = billie or Billie(BillieConfig(m=curve.bits))
    b.reset_time()
    driver = BillieDriver(b, curve)
    regs = driver.regs

    # software truth for the resident table
    two_p = affine_add(curve, p, p)
    p3 = affine_add(curve, p, two_p)
    p5 = affine_add(curve, p3, two_p)

    r_px, r_py = driver.alloc_load(p.x), driver.alloc_load(p.y)
    # 2P on Billie: double P, convert
    ax, ay, az = regs.alloc(), regs.alloc(), regs.alloc()
    driver.load(ax, p.x)
    driver.load(ay, p.y)
    driver.load(az, 1)
    driver.double(ax, ay, az)
    got_2p = driver.to_affine(ax, ay, az)
    assert got_2p == two_p, "Billie 2P diverged"
    r_2px, r_2py = ax, ay
    regs.release(az)
    # 3P = P + 2P, 5P = 3P + 2P
    r_3px, r_3py = _precompute_point(driver, p, r_2px, r_2py, p3)
    r_5px, r_5py = _precompute_point(driver, p3, r_2px, r_2py, p5)
    regs.release(r_2px, r_2py)
    table = {1: (r_px, r_py), 3: (r_3px, r_3py), 5: (r_5px, r_5py)}

    acc_x, acc_y, acc_z = regs.alloc(), regs.alloc(), regs.alloc()
    neg_y = regs.alloc()
    acc_inf = True
    for d in reversed(fractional_naf(x)):
        driver._gap()
        if not acc_inf:
            driver.double(acc_x, acc_y, acc_z)
        if d:
            qx, qy = table[abs(d)]
            if d < 0:
                driver._add(neg_y, qx, qy)   # -Q = (x, x + y)
                use_y = neg_y
            else:
                use_y = qy
            if acc_inf:
                # seed the accumulator from the table point: the COP2LD
                # path re-loads the affine words into the accumulator
                driver.load(acc_x, b.regs[qx])
                driver.load(acc_y, b.regs[use_y])
                driver.load(acc_z, 1)
                acc_inf = False
            else:
                acc_x, acc_y, acc_z = driver.add_mixed(
                    acc_x, acc_y, acc_z, qx, use_y)
    if acc_inf:
        return BillieRun(INFINITY, b.sync(), driver.instructions,
                         regs.peak)
    result = driver.to_affine(acc_x, acc_y, acc_z)
    return BillieRun(result, b.sync(), driver.instructions, regs.peak)


def run_twin(curve: Curve, u1: int, p: AffinePoint, u2: int,
             q: AffinePoint, billie: Billie | None = None) -> BillieRun:
    """Twin multiplication u1*P + u2*Q on Billie (verification path)."""
    b = billie or Billie(BillieConfig(m=curve.bits))
    b.reset_time()
    driver = BillieDriver(b, curve)
    regs = driver.regs

    p_plus_q = affine_add(curve, p, q)
    p_minus_q = affine_add(curve, p, affine_neg(curve, q))
    r_px, r_py = driver.alloc_load(p.x), driver.alloc_load(p.y)
    r_qx, r_qy = driver.alloc_load(q.x), driver.alloc_load(q.y)
    neg_y = regs.alloc()
    r_sx, r_sy = _precompute_point(driver, p, r_qx, r_qy, p_plus_q)
    driver._add(neg_y, r_qx, r_qy)               # -Q's y
    r_dx, r_dy = _precompute_point(driver, p, r_qx, neg_y, p_minus_q)

    table = {(1, 0): (r_px, r_py), (0, 1): (r_qx, r_qy),
             (1, 1): (r_sx, r_sy), (1, -1): (r_dx, r_dy)}
    d1, d2 = naf(u1), naf(u2)
    length = max(len(d1), len(d2))
    d1 += [0] * (length - len(d1))
    d2 += [0] * (length - len(d2))

    acc_x, acc_y, acc_z = regs.alloc(), regs.alloc(), regs.alloc()
    acc_inf = True
    for e1, e2 in zip(reversed(d1), reversed(d2)):
        driver._gap()
        if not acc_inf:
            driver.double(acc_x, acc_y, acc_z)
        if (e1, e2) == (0, 0):
            continue
        negate = e1 < 0 or (e1 == 0 and e2 < 0)
        key = (-e1, -e2) if negate else (e1, e2)
        qx, qy = table[key]
        if negate:
            driver._add(neg_y, qx, qy)
            use_y = neg_y
        else:
            use_y = qy
        if acc_inf:
            driver.load(acc_x, b.regs[qx])
            driver.load(acc_y, b.regs[use_y])
            driver.load(acc_z, 1)
            acc_inf = False
        else:
            acc_x, acc_y, acc_z = driver.add_mixed(
                acc_x, acc_y, acc_z, qx, use_y)
    if acc_inf:
        return BillieRun(INFINITY, b.sync(), driver.instructions,
                         regs.peak)
    result = driver.to_affine(acc_x, acc_y, acc_z)
    return BillieRun(result, b.sync(), driver.instructions, regs.peak)


def run_montgomery_ladder(curve: Curve, x: int, p: AffinePoint,
                          billie: Billie | None = None) -> BillieRun:
    """Lopez-Dahab Montgomery ladder on Billie (the Fig. 7.14
    comparison): 6M + 5S + 3A per scalar bit, x-only with a timed
    y-recovery at the end."""
    b = billie or Billie(BillieConfig(m=curve.bits))
    b.reset_time()
    driver = BillieDriver(b, curve)
    regs = driver.regs
    if x == 0 or not p or p.x == 0:
        return BillieRun(INFINITY if x % 2 == 0 or p.x == 0 else p,
                         0, 0, regs.peak)

    r_xp = driver.alloc_load(p.x)
    r_yp = driver.alloc_load(p.y)
    x1 = driver.alloc_load(p.x)
    z1 = driver.alloc_load(1)
    x2, z2 = regs.alloc(), regs.alloc()
    t0, t1 = regs.alloc(), regs.alloc()
    driver._sqr(z2, r_xp)
    driver._sqr(x2, z2)
    driver._add(x2, x2, driver.r_b)           # x(2P) = xP^4 + b

    def step(xa: int, za: int, xb: int, zb: int) -> None:
        """(xa,za) <- x(2A); (xb,zb) <- x(A+B), difference P."""
        driver._gap()
        driver._mul(t0, xa, zb)               # T1
        driver._mul(t1, xb, za)               # T2
        driver._add(zb, t0, t1)
        driver._sqr(zb, zb)                   # Zadd
        driver._mul(t0, t0, t1)               # T1 T2
        driver._mul(t1, r_xp, zb)
        driver._add(xb, t0, t1)               # Xadd
        driver._sqr(t0, xa)
        driver._sqr(t1, za)
        driver._mul(za, t0, t1)               # Zdbl
        driver._sqr(t0, t0)
        driver._sqr(t1, t1)
        driver._mul(t1, driver.r_b, t1)
        driver._add(xa, t0, t1)               # Xdbl

    for bit in bin(x)[3:]:
        if bit == "1":
            step(x2, z2, x1, z1)
        else:
            step(x1, z1, x2, z2)

    if b.regs[z1] == 0:
        return BillieRun(INFINITY, b.sync(), driver.instructions,
                         regs.peak)
    if b.regs[z2] == 0:
        return BillieRun(affine_neg(curve, p), b.sync(),
                         driver.instructions, regs.peak)
    # affine + y-recovery (Lopez-Dahab 1999), fully driven:
    zi = regs.alloc()
    driver.inverse(zi, z1)
    driver._mul(x1, x1, zi)                   # xk
    driver.inverse(zi, z2)
    driver._mul(x2, x2, zi)                   # xk1
    driver.inverse(zi, r_xp)                  # 1/xP
    driver._add(t0, x1, r_xp)                 # xk + xP
    driver._add(t1, x2, r_xp)                 # xk1 + xP
    driver._mul(t1, t0, t1)
    driver._sqr(x2, r_xp)
    driver._add(t1, t1, x2)
    driver._add(t1, t1, r_yp)
    driver._mul(t1, t1, t0)
    driver._mul(t1, t1, zi)
    driver._add(t1, t1, r_yp)                 # yk
    result = AffinePoint(b.regs[x1], b.regs[t1])
    return BillieRun(result, b.sync(), driver.instructions, regs.peak)
