"""Per-operation cycle and activity costs (DESIGN.md Section 5, step 3).

For the software configurations every field operation decomposes into
measured kernels plus a *software-harness overhead* term modeling what
the paper's compiled C++ adds around the inner loops (call/return,
operand-pointer marshalling, temporary copies, coordinate bookkeeping).
The overhead constants below are the only cycle-level calibration in the
model; they are set so the whole-operation latencies land near the
paper's measured Tables 7.1/7.2 and they scale with the word count k the
way copy costs do.

Reductions are measured for P-192 and B-163 and extrapolated to the other
fields by their fold-term counts (see ``repro.mp.reduce``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.ec.curves import Curve
from repro.fields.inversion import fermat_prime_opcounts, itoh_tsujii_opcounts
from repro.mp.reduce import reduction_fold_ops
from repro.kernels.runner import shared_runner
from repro.model.configs import MicroarchConfig

# ---------------------------------------------------------------------------
# Calibrated software-overhead constants (cycles).
# ---------------------------------------------------------------------------

#: per-field-op harness overhead: alpha + beta * k.  The compiled C++
#: suite allocates/copies multi-precision temporaries around each kernel.
SW_OVERHEAD_ALPHA = 100.0
SW_OVERHEAD_BETA = 20.0
#: the ISA-extended builds keep the accumulator in Hi/Lo/OvFlo and avoid
#: most temporaries, so their per-op glue is leaner (calibrated to the
#: paper's Table 7.1/7.2 ISA rows).  The prime path still marshals the
#: carry state and triple-word accumulator spills; the carry-less binary
#: path has essentially no glue beyond call/return.
PRIME_ISA_OVERHEAD_ALPHA = 40.0
PRIME_ISA_OVERHEAD_BETA = 8.0
BINARY_ISA_OVERHEAD_ALPHA = 12.0
BINARY_ISA_OVERHEAD_BETA = 3.0
#: lighter overhead for add/sub (operands used in place more often)
SW_ADD_OVERHEAD_ALPHA = 45.0
SW_ADD_OVERHEAD_BETA = 9.0
#: extended-Euclidean inversion: iterations ~ 2*bits, cycles/iteration
#: alpha + beta*k.  The per-iteration constant is large because the
#: compiled C++ walks heap-allocated big integers with bounds upkeep --
#: it anchors the paper's observation that the protocol arithmetic
#: (inversion modulo the group order, run on Pete in *every* config)
#: consumes ~62 % of an accelerated ECDSA (Section 7.3).
INV_ITER_ALPHA = 65.0
INV_ITER_BETA = 40.0
#: arithmetic modulo the group order has no NIST-friendly shape, so the
#: reduction is a generic (division-free, Barrett-style) pass roughly as
#: expensive as the multiplication itself
ORDER_REDUCE_FACTOR = 1.25
#: fraction of overhead cycles that touch RAM (copies)
OVERHEAD_RAM_FRACTION = 0.35
#: hand-scheduled assembly vs the paper's -O2 compiled nested loops: the
#: looped comb/table kernels of the software-only binary path lose more
#: to compilation than the mul-bound ISA kernels do (calibrated to
#: Table 7.2's baseline rows)
COMPILED_CODE_FACTOR_BINARY_SW = 1.48


@dataclass(frozen=True)
class OpCost:
    """Cycles + activity of one field/order operation on Pete."""

    cycles: float
    instructions: float
    ram_reads: float
    ram_writes: float

    def scaled(self, n: float) -> "OpCost":
        return OpCost(self.cycles * n, self.instructions * n,
                      self.ram_reads * n, self.ram_writes * n)

    def plus(self, other: "OpCost") -> "OpCost":
        return OpCost(self.cycles + other.cycles,
                      self.instructions + other.instructions,
                      self.ram_reads + other.ram_reads,
                      self.ram_writes + other.ram_writes)


def _overhead(k: int, alpha: float, beta: float) -> OpCost:
    cycles = alpha + beta * k
    return OpCost(
        cycles=cycles,
        instructions=0.92 * cycles,
        ram_reads=OVERHEAD_RAM_FRACTION * cycles * 0.6,
        ram_writes=OVERHEAD_RAM_FRACTION * cycles * 0.4,
    )


def _kernel_cost(name: str, k: int) -> OpCost:
    res = shared_runner().measure(name, k)
    return OpCost(res.cycles, res.instructions, res.ram_reads,
                  res.ram_writes)


def _inversion_cost(bits: int, k: int) -> OpCost:
    """Binary extended Euclidean inversion on Pete, O(k^2)."""
    iters = 2.0 * bits
    per_iter = INV_ITER_ALPHA + INV_ITER_BETA * k
    cycles = iters * per_iter
    return OpCost(cycles, 0.9 * cycles, 0.28 * cycles, 0.14 * cycles)


def _prime_reduce_cost(bits: int) -> OpCost:
    """NIST fast reduction; measured at P-192, fold-scaled elsewhere."""
    base = _kernel_cost("red_p192", 6)
    scale = reduction_fold_ops(bits, prime=True) / reduction_fold_ops(
        192, prime=True)
    return base.scaled(scale)


def _binary_reduce_cost(m: int) -> OpCost:
    base = _kernel_cost("red_b163", 6)
    scale = reduction_fold_ops(m, prime=False) / reduction_fold_ops(
        163, prime=False)
    return base.scaled(scale)


# ---------------------------------------------------------------------------
# Per-configuration cost tables
# ---------------------------------------------------------------------------


def software_costs(curve_name: str,
                   config: "MicroarchConfig | str") -> dict[str, OpCost]:
    """Field + order op costs for a software (non-accelerated) config.

    Costs depend only on the ISA feature flags, so instruction-cache
    variants share entries.
    """
    from repro.model.configs import get_config

    if isinstance(config, str):
        config = get_config(config)
    return _software_costs(curve_name, config.prime_isa_ext,
                           config.binary_isa_ext)


@lru_cache(maxsize=None)
def _software_costs(curve_name: str, prime_isa_ext: bool,
                    binary_isa_ext: bool) -> dict[str, OpCost]:
    from repro.ec.curves import get_curve

    class _Flags:
        pass

    config = _Flags()
    config.prime_isa_ext = prime_isa_ext
    config.binary_isa_ext = binary_isa_ext
    curve = get_curve(curve_name)
    k = curve.field.words()
    bits = curve.bits
    costs: dict[str, OpCost] = {}
    if config.binary_isa_ext and curve.is_binary:
        mul_overhead = _overhead(k, BINARY_ISA_OVERHEAD_ALPHA,
                                 BINARY_ISA_OVERHEAD_BETA)
        add_overhead = _overhead(k, BINARY_ISA_OVERHEAD_ALPHA,
                                 BINARY_ISA_OVERHEAD_BETA / 2)
    elif config.prime_isa_ext or config.binary_isa_ext:
        mul_overhead = _overhead(k, PRIME_ISA_OVERHEAD_ALPHA,
                                 PRIME_ISA_OVERHEAD_BETA)
        add_overhead = _overhead(k, PRIME_ISA_OVERHEAD_ALPHA,
                                 PRIME_ISA_OVERHEAD_BETA / 2)
    else:
        mul_overhead = _overhead(k, SW_OVERHEAD_ALPHA, SW_OVERHEAD_BETA)
        add_overhead = _overhead(k, SW_ADD_OVERHEAD_ALPHA,
                                 SW_ADD_OVERHEAD_BETA)

    if curve.is_binary:
        reduce_cost = _binary_reduce_cost(bits)
        if config.binary_isa_ext:
            mul = _kernel_cost("ps_mulgf2", k)
            sqr = _kernel_cost("bsqr_ext", k)
        else:
            mul = _kernel_cost("comb_mul", k).scaled(
                COMPILED_CODE_FACTOR_BINARY_SW)
            sqr = _kernel_cost("bsqr_table", k).scaled(
                COMPILED_CODE_FACTOR_BINARY_SW)
        costs["fmul"] = mul.plus(reduce_cost).plus(mul_overhead)
        costs["fsqr"] = sqr.plus(reduce_cost).plus(add_overhead)
        # binary add = XOR loop, no reduction (Section 4.2.4)
        xor_loop = _kernel_cost("mp_add", k).scaled(0.7)
        costs["fadd"] = xor_loop.plus(add_overhead)
        costs["fsub"] = costs["fadd"]
        costs["finv"] = _inversion_cost(bits, k)
    else:
        reduce_cost = _prime_reduce_cost(bits)
        if config.prime_isa_ext:
            mul = _kernel_cost("ps_mul_ext", k)
            sqr = _kernel_cost("ps_sqr_ext", k)
        else:
            mul = _kernel_cost("os_mul", k)
            sqr = mul  # the baseline has no dedicated squaring path
        costs["fmul"] = mul.plus(reduce_cost).plus(mul_overhead)
        costs["fsqr"] = sqr.plus(reduce_cost).plus(mul_overhead)
        add = _kernel_cost("mp_add", k)
        sub = _kernel_cost("mp_sub", k)
        # modular add = raw add + conditional (avg 0.5) correcting sub
        costs["fadd"] = add.plus(sub.scaled(0.5)).plus(add_overhead)
        costs["fsub"] = sub.plus(add.scaled(0.5)).plus(add_overhead)
        costs["finv"] = _inversion_cost(bits, k)

    _add_order_costs(costs, curve, prime_ext=config.prime_isa_ext)
    return costs


def _add_order_costs(costs: dict[str, OpCost], curve: Curve,
                     prime_ext: bool) -> None:
    """Arithmetic modulo the group order n: integer math on Pete in every
    configuration (Section 4.1)."""
    k_order = -(-curve.n.bit_length() // 32)
    bits = curve.n.bit_length()
    mul_kernel = "ps_mul_ext" if prime_ext else "os_mul"
    mul = _kernel_cost(mul_kernel, k_order)
    generic_reduce = mul.scaled(ORDER_REDUCE_FACTOR)
    if prime_ext:
        overhead = _overhead(k_order, PRIME_ISA_OVERHEAD_ALPHA,
                             PRIME_ISA_OVERHEAD_BETA)
    else:
        overhead = _overhead(k_order, SW_OVERHEAD_ALPHA, SW_OVERHEAD_BETA)
    costs["omul"] = mul.plus(generic_reduce).plus(overhead)
    costs["oadd"] = _kernel_cost("mp_add", k_order).plus(
        _overhead(k_order, SW_ADD_OVERHEAD_ALPHA, SW_ADD_OVERHEAD_BETA))
    costs["oinv"] = _inversion_cost(bits, k_order)


# ---------------------------------------------------------------------------
# Accelerator-side field-op expansion
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MonteOpModel:
    """Effective Monte costs for one field op inside the point-routine
    instruction pattern (loads/store overlapped via double buffering)."""

    mul_cycles: float
    add_cycles: float
    issue_instructions: float = 6.0   # Pete instructions per field op
    dma_words_per_op: float = 0.0     # filled by the system model

    def fermat_inverse_cycles(self, p: int) -> float:
        sqr, mul = fermat_prime_opcounts(p)
        return (sqr + mul) * self.mul_cycles


def itoh_tsujii_billie_ops(m: int) -> dict[str, int]:
    """Billie op counts of one Itoh-Tsujii field inversion."""
    sqr, mul = itoh_tsujii_opcounts(m)
    return {"mul": mul, "sqr": sqr}
