"""The 64-bit-datapath question (paper Section 2.2 / Section 8).

"We currently utilize a 32-bit datapath for our processor, but for
future work, we would like to investigate the energy benefit of using a
64-bit processor."  The FFAU study (Section 7.9, reproduced in
Fig. 7.15) answers this for the accelerator; this module extends the
question to the *software* configurations with an explicit, documented
estimation model -- not a simulation, since Pete's ISA is 32-bit.

Estimation model
----------------

A w=64 core halves the word count k, so:

* multiplication kernels run k'^2 = (k/2)^2 inner iterations -- one
  quarter of the word products -- but each 64x64 product on a
  Karatsuba-style multi-cycle unit needs three 33x33 partial products
  where the 32-bit unit needs three 17x17s; we charge an issue latency
  of 6 cycles (vs 4) and the same per-iteration instruction overhead
  (loads/adds/stores are word ops either way);
* O(k) passes (additions, reductions, copies) halve;
* the clock period is assumed unchanged (the paper's 3 ns has slack;
  a 64-bit adder at 45 nm fits), and the core's dynamic energy per
  cycle grows by ``CORE_ENERGY_FACTOR_64`` (wider register file,
  datapath and buses -- the dominant adder/mux structures roughly
  double, the control does not).

These assumptions are exactly the kind the paper's Section 7.9 analysis
applies to the FFAU, where they are *validated*: the measured 64-bit
FFAU is 2.13-2.9x faster than the 32-bit one at equal key sizes with
2.4x the dynamic power -- our software model uses the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.model.costs import software_costs
from repro.model.opcount import ecdsa_opcounts
from repro.model.system import ECDSA_FIXED_CYCLES, SystemModel

#: 64-bit multiply issue latency on the widened Karatsuba unit.
MULT_LATENCY_64 = 6
MULT_LATENCY_32 = 4

#: dynamic energy per active cycle, 64-bit core vs 32-bit core.  The
#: FFAU's measured scaling (Table 7.3: 660 -> 1473 uW, 2.23x) bounds it
#: from above since Pete carries proportionally more width-independent
#: control; we adopt 1.8x.
CORE_ENERGY_FACTOR_64 = 1.8


@dataclass(frozen=True)
class Datapath64Estimate:
    curve: str
    config: str
    cycles_32: float
    cycles_64: float
    energy_32_uj: float
    energy_64_uj: float

    @property
    def speedup(self) -> float:
        return self.cycles_32 / self.cycles_64

    @property
    def energy_factor(self) -> float:
        """>1 means the 64-bit machine saves energy."""
        return self.energy_32_uj / self.energy_64_uj


def _scale_cycles(op: str, cycles32: float, is_mul: bool) -> float:
    """Apply the structural scaling to one op's 32-bit cycle cost."""
    if is_mul:
        # quarter the inner iterations; each iteration carries two more
        # multiplier-latency cycles that static scheduling cannot fully
        # hide in the tight product-scanning loop
        per_iter_penalty = (MULT_LATENCY_64 - MULT_LATENCY_32) / 8.0
        return cycles32 * 0.25 * (1.0 + per_iter_penalty)
    # O(k) work halves
    return cycles32 * 0.5


@lru_cache(maxsize=None)
def estimate(curve_name: str, config_name: str = "baseline"
             ) -> Datapath64Estimate:
    """Estimate a 64-bit Pete's cycles/energy for one configuration."""
    model = SystemModel()
    counts = ecdsa_opcounts(curve_name)
    costs = software_costs(curve_name, config_name)

    def primitive_cycles64(primitive) -> float:
        total = ECDSA_FIXED_CYCLES * 0.85  # hashing shrinks a little
        ops = {**primitive.field_ops, **primitive.order_ops}
        for op, n in ops.items():
            if not n:
                continue
            is_mul = op in ("fmul", "fsqr", "omul")
            total += n * _scale_cycles(op, costs[op].cycles, is_mul)
        return total

    cycles64 = (primitive_cycles64(counts.sign)
                + primitive_cycles64(counts.verify))
    report32 = model.report(curve_name, config_name)
    cycles32 = report32.cycles
    # energy: core scales by the width factor on the shortened runtime;
    # ROM/RAM/static scale with the new cycle count
    core_uj = report32.component_uj("Pete")
    other_uj = report32.total_uj - core_uj
    ratio = cycles64 / cycles32
    energy64 = (core_uj * ratio * CORE_ENERGY_FACTOR_64
                + other_uj * ratio)
    return Datapath64Estimate(curve_name, config_name, cycles32, cycles64,
                              report32.total_uj, energy64)


def study(config: str = "baseline") -> dict[str, Datapath64Estimate]:
    """The Section 8 question across the prime key sizes."""
    return {curve: estimate(curve, config)
            for curve in ("P-192", "P-256", "P-384", "P-521")}
