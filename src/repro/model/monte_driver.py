"""Driving elliptic-curve point arithmetic through Monte (Section 5.4.1).

The Billie driver shows the binary accelerator executing whole scalar
multiplications; this module does the same for Monte: every field
operation of the mixed Jacobian-affine formulas becomes the four-beat
COP2 pattern (load A, load B, execute, store) against the shared RAM,
with all values kept in the Montgomery domain so COP2MUL's a*b*R^-1 is
exactly a field multiplication.

Used for end-to-end validation (a scalar multiplication computed purely
through Monte's instruction stream must match the software EC layer) and
for measured whole-point-operation cycle counts including the real
queue/DMA overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.monte import Monte
from repro.ec.curves import Curve
from repro.ec.point import INFINITY, AffinePoint, affine_neg
from repro.ec.scalar import fractional_naf, precompute_odd_multiples

#: Pete-side control work per point operation (window scan, branches).
CONTROL_GAP_CYCLES = 10


@dataclass
class MonteRun:
    """Result of one driven operation."""

    result: AffinePoint
    cycles: int
    field_ops: int


class MonteDriver:
    """Issues Monte's instruction stream for Jacobian point arithmetic.

    Values live in shared RAM as Montgomery-domain word arrays; the
    driver tracks them as a small symbolic store keyed by variable name
    (the addresses a compiler would assign).
    """

    def __init__(self, monte: Monte, curve: Curve) -> None:
        if curve.is_binary:
            raise ValueError("Monte accelerates prime fields")
        self.m = monte
        self.curve = curve
        self.ctx = monte.ctx
        self._mem: dict[str, list[int]] = {}
        self._addr: dict[str, int] = {}
        self._next_addr = 0x100
        self.field_ops = 0

    # -- the shared-RAM variable store -------------------------------------

    def put(self, name: str, value: int) -> None:
        """Place a field element (normal domain) into shared RAM."""
        self._mem[name] = self.ctx.to_mont(value % self.curve.field.p)
        self._addr.setdefault(name, self._alloc())

    def get(self, name: str) -> int:
        return self.ctx.from_mont(self._mem[name])

    def _alloc(self) -> int:
        addr = self._next_addr
        self._next_addr += 4 * self.ctx.k
        return addr

    # -- field operations as COP2 streams -------------------------------------

    def _binary_op(self, op: str, dst: str, a: str, b: str) -> None:
        self.m.load_a(self._mem[a], addr=self._addr[a])
        self.m.load_b(self._mem[b], addr=self._addr[b])
        getattr(self.m, op)()
        self._addr.setdefault(dst, self._alloc())
        result, _ = self.m.store(addr=self._addr[dst])
        self._mem[dst] = result
        self.field_ops += 1

    def mul(self, dst: str, a: str, b: str) -> None:
        self._binary_op("mul", dst, a, b)

    def add(self, dst: str, a: str, b: str) -> None:
        self._binary_op("add", dst, a, b)

    def sub(self, dst: str, a: str, b: str) -> None:
        self._binary_op("sub", dst, a, b)

    def gap(self) -> None:
        self.m.now += CONTROL_GAP_CYCLES

    def inverse(self, dst: str, src: str) -> None:
        """Fermat inversion: a^(p-2) by square-and-multiply on Monte."""
        exponent = self.curve.field.p - 2
        self.put("_invacc", 1)
        self.mul("_invacc", "_invacc", src)  # acc = src (from 1 * src)
        for bit in bin(exponent)[3:]:
            self.mul("_invacc", "_invacc", "_invacc")
            if bit == "1":
                self.mul("_invacc", "_invacc", src)
        self._mem[dst] = self._mem["_invacc"]
        self._addr.setdefault(dst, self._alloc())

    # -- Jacobian point operations (mirror repro.ec.jacobian) -----------------

    def point_double(self, x: str, y: str, z: str) -> None:
        """(X, Y, Z) <- 2(X, Y, Z) in place; a = -3 formulas with the
        small-constant multiplies as Monte additions."""
        d = self
        d.gap()
        d.mul("t0", y, y)            # Y^2
        d.mul("t1", x, "t0")         # X Y^2
        d.add("t1", "t1", "t1")
        d.add("t1", "t1", "t1")      # S = 4 X Y^2
        d.mul("t2", z, z)            # Z^2
        d.sub("t3", x, "t2")
        d.add("t4", x, "t2")
        d.mul("t3", "t3", "t4")
        d.add("t4", "t3", "t3")
        d.add("t3", "t4", "t3")      # M = 3 (X-Z^2)(X+Z^2)
        d.mul("t4", "t3", "t3")      # M^2
        d.sub("t4", "t4", "t1")
        d.sub("t4", "t4", "t1")      # X3
        d.mul("t5", "t0", "t0")      # Y^4
        d.add("t5", "t5", "t5")
        d.add("t5", "t5", "t5")
        d.add("t5", "t5", "t5")      # 8 Y^4
        d.sub("t6", "t1", "t4")
        d.mul("t6", "t3", "t6")
        d.sub("t6", "t6", "t5")      # Y3
        d.mul("t7", y, z)
        d.add("t7", "t7", "t7")      # Z3
        self._rename("t4", x)
        self._rename("t6", y)
        self._rename("t7", z)

    def point_add_mixed(self, x: str, y: str, z: str,
                        qx: str, qy: str) -> None:
        """(X, Y, Z) <- (X, Y, Z) + affine(qx, qy)."""
        d = self
        d.gap()
        d.mul("u0", z, z)            # Z^2
        d.mul("u1", qx, "u0")        # U2
        d.mul("u2", "u0", z)
        d.mul("u2", qy, "u2")        # S2
        d.sub("u3", "u1", x)         # H
        d.sub("u4", "u2", y)         # r
        d.mul("u5", "u3", "u3")      # H^2
        d.mul("u6", "u5", "u3")      # H^3
        d.mul("u7", x, "u5")         # V
        d.mul("u8", "u4", "u4")
        d.sub("u8", "u8", "u6")
        d.sub("u8", "u8", "u7")
        d.sub("u8", "u8", "u7")      # X3
        d.sub("u9", "u7", "u8")
        d.mul("u9", "u4", "u9")
        d.mul("ua", y, "u6")
        d.sub("u9", "u9", "ua")      # Y3
        d.mul("ub", z, "u3")         # Z3
        self._rename("u8", x)
        self._rename("u9", y)
        self._rename("ub", z)

    def _rename(self, src: str, dst: str) -> None:
        self._mem[dst] = self._mem[src]
        self._addr[dst] = self._addr[src]
        self._addr[src] = self._alloc()

    def to_affine(self, x: str, y: str, z: str) -> AffinePoint:
        self.inverse("zi", z)
        self.mul("zi2", "zi", "zi")
        self.mul("ax", x, "zi2")
        self.mul("zi3", "zi2", "zi")
        self.mul("ay", y, "zi3")
        return AffinePoint(self.get("ax"), self.get("ay"))


def run_sliding_window(curve: Curve, scalar: int, point: AffinePoint,
                       monte: Monte | None = None) -> MonteRun:
    """Sliding-window scalar multiplication entirely through Monte's
    instruction stream (the precomputed table is built in software; its
    cycle cost is negligible next to the main loop)."""
    monte = monte or Monte(curve.field.p)
    monte.reset_time()
    driver = MonteDriver(monte, curve)
    table = precompute_odd_multiples(curve, point)
    neg_table = {d: affine_neg(curve, p) for d, p in table.items()}
    for digit, pt in table.items():
        driver.put(f"tab{digit}x", pt.x)
        driver.put(f"tab{digit}y", pt.y)
        driver.put(f"ntab{digit}y", neg_table[digit].y)

    digits = fractional_naf(scalar)
    acc_live = False
    for d in reversed(digits):
        if acc_live:
            driver.point_double("X", "Y", "Z")
        if d:
            key = abs(d)
            qy = f"tab{key}y" if d > 0 else f"ntab{key}y"
            if not acc_live:
                driver.put("X", table[key].x if d > 0
                           else neg_table[key].x)
                driver.put("Y", table[key].y if d > 0
                           else neg_table[key].y)
                driver.put("Z", 1)
                acc_live = True
            else:
                driver.point_add_mixed("X", "Y", "Z", f"tab{key}x", qy)
    if not acc_live:
        return MonteRun(INFINITY, monte.sync(), driver.field_ops)
    result = driver.to_affine("X", "Y", "Z")
    return MonteRun(result, monte.sync(), driver.field_ops)


def run_point_operation_pair(curve: Curve) -> MonteRun:
    """One double + one mixed add through Monte: the representative
    sequence the system model's pattern costs are validated against."""
    monte = Monte(curve.field.p)
    driver = MonteDriver(monte, curve)
    g = curve.generator
    driver.put("X", g.x)
    driver.put("Y", g.y)
    driver.put("Z", 1)
    driver.put("qx", g.x)
    driver.put("qy", g.y)
    driver.point_double("X", "Y", "Z")
    driver.point_add_mixed("X", "Y", "Z", "qx", "qy")
    result = driver.to_affine("X", "Y", "Z")
    return MonteRun(result, monte.sync(), driver.field_ops)
