"""Prior-work comparison points (paper Fig. 7.14 and Chapter 3).

Guo & Schaumont (DATE 2009) integrate an 8-bit microcontroller with a
GF(2^163) accelerator and report 163-bit scalar-point-multiplication
latencies for their energy-optimal design points; Fig. 7.14 plots them
against Billie.  The published cycle counts are embedded as comparison
anchors (substitution documented in DESIGN.md).

Wenger & Hutter's "Neptun" processor (prime vs binary ECC energy) and
the Wander et al. WSN energy analysis provide the Related Work context
figures quoted in docs and examples.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PriorWorkPoint:
    label: str
    digit_size: int
    cycles: int


#: Guo et al. 163-bit Montgomery-ladder scalar multiplication on their
#: HW/SW ECC SoC; the points the paper marks as energy-optimal.
GUO_SCHAUMONT_163: tuple[PriorWorkPoint, ...] = (
    PriorWorkPoint("Guo et al. (D=2)", 2, 502_000),
    PriorWorkPoint("Guo et al. (D=4)", 4, 315_000),
    PriorWorkPoint("Guo et al. (D=8)", 8, 229_000),
)

#: Wenger & Hutter, "Neptun", 130 nm @ 1 MHz: energy per ECDSA signature.
WENGER_NEPTUN_UJ = {
    "prime_192_sign": 55.10,
    "binary_191_sign": 19.53,
}

#: Wander et al.: handshake energy share consumed by 160-bit ECC on an
#: ATmega128L WSN node.
WANDER_HANDSHAKE_ECC_SHARE = 0.72

#: Section 7.8 baseline validation against Xilinx Microblaze on a
#: Virtex-5 (same 5-stage/no-cache/no-MMU configuration): Pete trades
#: DSP blocks for LUT fabric (the Karatsuba multi-cycle multiplier) and
#: still wins on a 384-bit ECDSA Sign+Verify.
MICROBLAZE_COMPARISON = {
    "pete_extra_lut_ff_pairs": 0.343,       # +34.3 % fabric
    "pete_fewer_dsp_blocks": 0.750,         # -75.0 % DSP blocks
    "pete_performance_advantage": 0.177,    # +17.7 % on 384-bit S+V
}

#: Section 7.8 multiplier power validation (45 nm synthesis deltas):
#: Karatsuba vs alternatives, overall core power.
KARATSUBA_POWER_SAVINGS = {
    "vs_operand_scan_multicycle": 0.0352,   # 3.52 % average power
    "vs_parallel_pipelined": 0.134,         # 13.4 % average power
}
