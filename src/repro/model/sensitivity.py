"""Sensitivity of the paper's conclusions to the energy calibration.

The cycle-level results in this reproduction are measured; the absolute
energies rest on the calibrated coefficients in
:mod:`repro.energy.calibration`.  A fair question for any calibrated
model is: *do the paper's qualitative conclusions survive if the
calibration is wrong?*  This study perturbs each major coefficient by
±25 % and recomputes the headline comparisons.

The conclusions under test (all orderings, not magnitudes):

1. every step right on Fig. 1.1's spectrum saves energy
   (baseline > isa_ext > isa_ext_ic > monte, per key size);
2. binary ISA beats prime ISA at equal security;
3. software-only binary ECC is far worse than with the extensions;
4. Billie beats Monte at 163/192-bit;
5. the 4 KB instruction cache is no worse than its 1 KB and 8 KB
   neighbours' *ordering* (1 KB worst of the three).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

from repro.energy.calibration import CALIBRATION, Calibration
from repro.model.configs import ISA_EXT, with_icache
from repro.model.system import SystemModel

#: The coefficients perturbed, as (label, mutate(calibration, factor)).
PERTURBATIONS: tuple[tuple[str, callable], ...] = (
    ("pete_active", lambda c, f: replace(
        c, pete=replace(c.pete, active_pj=c.pete.active_pj * f))),
    ("pete_stall", lambda c, f: replace(
        c, pete=replace(c.pete, stall_pj=c.pete.stall_pj * f))),
    ("pete_static", lambda c, f: replace(
        c, pete=replace(c.pete, static_uw=c.pete.static_uw * f))),
    ("rom_read", lambda c, f: replace(c, rom_energy_scale=f)),
    ("ram_access", lambda c, f: replace(c, ram_energy_scale=f)),
    ("uncore", lambda c, f: replace(
        c, uncore=replace(c.uncore, active_pj=c.uncore.active_pj * f))),
    ("monte_idle", lambda c, f: replace(
        c, monte=replace(c.monte, ffau_idle_pj=c.monte.ffau_idle_pj * f))),
    ("monte_static", lambda c, f: replace(
        c, monte=replace(c.monte, static_uw=c.monte.static_uw * f))),
    ("billie_active", lambda c, f: replace(
        c, billie=replace(c.billie,
                          active_per_bit_pj=c.billie.active_per_bit_pj * f))),
)


@dataclass(frozen=True)
class SensitivityOutcome:
    """Whether every qualitative conclusion held for one perturbation."""

    coefficient: str
    factor: float
    spectrum_ordering: bool
    binary_beats_prime: bool
    binary_sw_impractical: bool
    billie_beats_monte_at_163: bool
    cache_knee: bool

    @property
    def all_hold(self) -> bool:
        return (self.spectrum_ordering and self.binary_beats_prime
                and self.binary_sw_impractical
                and self.billie_beats_monte_at_163 and self.cache_knee)


def _evaluate(calibration: Calibration, coefficient: str,
              factor: float) -> SensitivityOutcome:
    model = SystemModel(calibration)

    def uj(curve, config):
        return model.report(curve, config).total_uj

    spectrum = all(
        uj(c, "baseline") > uj(c, "isa_ext") > uj(c, "isa_ext_ic")
        > uj(c, "monte")
        for c in ("P-192", "P-256")
    )
    binary_beats_prime = all(
        uj(p, "isa_ext") > uj(b, "binary_isa")
        for p, b in (("P-192", "B-163"), ("P-521", "B-571"))
    )
    binary_sw = uj("B-163", "baseline") > 4 * uj("B-163", "binary_isa")
    billie = uj("P-192", "monte") > 1.3 * uj("B-163", "billie")
    cache_1k = uj("P-192", with_icache(ISA_EXT, 1024))
    cache_4k = uj("P-192", with_icache(ISA_EXT, 4096))
    cache_8k = uj("P-192", with_icache(ISA_EXT, 8192))
    knee = cache_4k <= cache_8k < cache_1k
    return SensitivityOutcome(coefficient, factor, spectrum,
                              binary_beats_prime, binary_sw, billie, knee)


@lru_cache(maxsize=1)
def sensitivity_sweep(delta: float = 0.25) -> list[SensitivityOutcome]:
    """Perturb every coefficient by ±``delta`` and test the conclusions."""
    outcomes = []
    for label, mutate in PERTURBATIONS:
        for factor in (1.0 - delta, 1.0 + delta):
            calibration = mutate(CALIBRATION, factor)
            outcomes.append(_evaluate(calibration, label, factor))
    return outcomes


def robustness_summary(delta: float = 0.25) -> dict[str, bool]:
    """conclusion -> survived every perturbation?"""
    outcomes = sensitivity_sweep(delta)
    return {
        "spectrum_ordering": all(o.spectrum_ordering for o in outcomes),
        "binary_beats_prime": all(o.binary_beats_prime for o in outcomes),
        "binary_sw_impractical": all(o.binary_sw_impractical
                                     for o in outcomes),
        "billie_beats_monte_at_163": all(o.billie_beats_monte_at_163
                                         for o in outcomes),
        "cache_knee": all(o.cache_knee for o in outcomes),
    }
