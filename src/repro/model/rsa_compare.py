"""RSA vs ECC energy on the baseline system (paper Section 2.1.5 and the
Wander et al. related work).

Wander et al. measured 160-bit ECC vs 1024-bit RSA on an ATmega128L and
found ECC buys ~4.2x the key exchanges per battery.  This model prices
both primitives on *our* baseline Pete with the same kernel-derived costs
the ECDSA model uses: an RSA private operation is (with CRT) two
half-size windowed exponentiations whose Montgomery multiplications each
cost one operand-scanning multiply-and-reduce pass at the half-modulus
word count.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.model.costs import (
    ORDER_REDUCE_FACTOR,
    SW_OVERHEAD_ALPHA,
    SW_OVERHEAD_BETA,
    _kernel_cost,
)
from repro.model.system import ECDSA_FIXED_CYCLES, SystemModel
from repro.rsa.modexp import modexp_counts
from repro.rsa.rsa import PUBLIC_EXPONENT

#: ECC security-equivalent RSA modulus sizes (paper Section 2.1.5 /
#: NIST SP 800-57).
RSA_EQUIVALENT_BITS = {
    "P-192": 1536, "B-163": 1024,
    "P-224": 2048, "B-233": 2048,
    "P-256": 3072, "B-283": 3072,
    "P-384": 7680, "B-409": 7680,
    "P-521": 15360, "B-571": 15360,
}

#: Supported operand-scanning kernel sizes (words); moduli in between
#: interpolate quadratically.
_KERNEL_KS = (6, 8, 12, 13, 17, 18)


@dataclass(frozen=True)
class RsaCost:
    """Cycle/energy estimate for one RSA operation on baseline Pete."""

    modulus_bits: int
    operation: str
    montmuls: int
    cycles: float
    energy_uj: float


def _montmul_cycles(k: int) -> float:
    """One Montgomery multiplication of k words in software: a full
    multiplication pass plus the interleaved reduction pass (CIOS does
    2k^2 word multiplies where plain multiplication does k^2)."""
    base = _mul_kernel_cycles(k)
    overhead = SW_OVERHEAD_ALPHA + SW_OVERHEAD_BETA * k
    return base * (1 + ORDER_REDUCE_FACTOR) + overhead


@lru_cache(maxsize=None)
def _mul_kernel_cycles(k: int) -> float:
    """os_mul cycles at k words, quadratically interpolated between the
    measured kernel sizes (the kernel is parameterized but measuring
    every RSA size would be wasteful)."""
    if k <= max(_KERNEL_KS):
        best = min(_KERNEL_KS, key=lambda m: abs(m - k))
        measured = _kernel_cost("os_mul", best).cycles
        return measured * (k / best) ** 2
    anchor = max(_KERNEL_KS)
    measured = _kernel_cost("os_mul", anchor).cycles
    return measured * (k / anchor) ** 2


def rsa_operation_cost(modulus_bits: int, operation: str,
                       window: int = 4) -> RsaCost:
    """Price one RSA op on the baseline configuration (333 MHz)."""
    from repro.energy.calibration import CALIBRATION
    from repro.energy.technology import SYSTEM_CLOCK_NS

    if operation == "sign":
        # CRT: two exponentiations at half size with half-size exponents
        half_bits = modulus_bits // 2
        counts = modexp_counts((1 << half_bits) - 1, window)
        montmuls = 2 * counts.total_montmuls
        k = -(-half_bits // 32)
        cycles = montmuls * _montmul_cycles(k)
        # CRT recombination: ~2 half-size multiplies
        cycles += 2 * _mul_kernel_cycles(k)
    elif operation == "verify":
        counts = modexp_counts(PUBLIC_EXPONENT, window=1)
        montmuls = counts.total_montmuls
        k = -(-modulus_bits // 32)
        cycles = montmuls * _montmul_cycles(k)
    else:
        raise ValueError("operation must be 'sign' or 'verify'")
    cycles += ECDSA_FIXED_CYCLES  # hashing/padding/harness, same as ECDSA
    # baseline energy: same per-cycle mix as the ECDSA software model
    cal = CALIBRATION
    active = 0.92 * cycles
    pete_nj = (active * cal.pete.active_pj
               + (cycles - active) * cal.pete.stall_pj) / 1e3
    rom_nj = active * cal.rom().read_energy_pj() / 1e3
    ram_nj = 0.35 * cycles * 0.85 * cal.ram().read_energy_pj() / 1e3
    static_nj = ((cal.pete.static_uw + cal.ram().leakage_uw())
                 * cycles * SYSTEM_CLOCK_NS * 1e-9) * 1e3
    energy_uj = (pete_nj + rom_nj + ram_nj + static_nj) / 1e3
    return RsaCost(modulus_bits, operation, montmuls, cycles, energy_uj)


@dataclass(frozen=True)
class HandshakeComparison:
    """ECC vs security-equivalent RSA for one sign+verify handshake."""

    curve: str
    rsa_bits: int
    ecc_uj: float
    rsa_uj: float

    @property
    def ecc_advantage(self) -> float:
        return self.rsa_uj / self.ecc_uj


#: Wander et al.'s experiment paired 160-bit (prime-field) ECC against
#: 1024-bit RSA with the sensor node doing the *signing* -- the node-side
#: private operation is what drains the battery.
WANDER_CURVE = "P-192"   # our nearest grid point to their 160-bit curve
WANDER_RSA_BITS = 1024


@lru_cache(maxsize=None)
def compare_node_signing(curve_name: str = WANDER_CURVE,
                         rsa_bits: int = WANDER_RSA_BITS
                         ) -> HandshakeComparison:
    """Node-side private-operation energy: ECDSA sign vs RSA sign."""
    model = SystemModel()
    ecc = model.report(curve_name, "baseline", "sign").total_uj
    rsa = rsa_operation_cost(rsa_bits, "sign").energy_uj
    return HandshakeComparison(curve_name, rsa_bits, ecc, rsa)


@lru_cache(maxsize=None)
def compare_handshake(curve_name: str) -> HandshakeComparison:
    """Energy of Sign+Verify: ECDSA on ``curve_name`` vs the
    security-equivalent RSA, both on the baseline configuration."""
    model = SystemModel()
    ecc = model.report(curve_name, "baseline").total_uj
    rsa_bits = RSA_EQUIVALENT_BITS[curve_name]
    rsa = (rsa_operation_cost(rsa_bits, "sign").energy_uj
           + rsa_operation_cost(rsa_bits, "verify").energy_uj)
    return HandshakeComparison(curve_name, rsa_bits, ecc, rsa)
