"""On-disk content-addressed result cache for artifact payloads.

One JSON file per cache entry, named by the full
:func:`repro.sweep.keys.artifact_key` -- the key *is* the address, so a
hit needs no validation beyond reading the file, and any change to the
producing code, the calibration or the parameters simply addresses a
different (absent) entry.  Writes are atomic (temp file + ``rename``)
so parallel sweep workers and concurrent sweeps can share a directory.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro import obs
from repro.trace.record import repo_root

CACHE_SCHEMA = "repro.sweep.v1"

#: Overrides the default cache directory (``results/cache``).
ENV_DIR = "REPRO_SWEEP_CACHE_DIR"


def default_cache_dir() -> str:
    return os.environ.get(ENV_DIR,
                          os.path.join(repo_root(), "results", "cache"))


class ResultCache:
    """Get/put interface over one cache directory."""

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = str(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _note_lookup(self, tel: obs.Telemetry, result: str, path: str,
                     t0: float) -> None:
        """Telemetry for one lookup: labeled hit/miss counter, lookup
        latency histogram, and (on hits) the bytes read."""
        name = "sweep_cache_hits" if result == "hit" else "sweep_cache_misses"
        tel.counter(name).inc()
        tel.histogram("sweep_cache_lookup_s", result=result).observe(
            time.perf_counter() - t0)
        if result == "hit":
            try:
                tel.counter("sweep_cache_read_bytes").inc(
                    os.stat(path).st_size)
            except OSError:
                pass

    def get(self, key: str) -> dict | None:
        """The stored payload, or ``None`` (miss, or corrupt entry)."""
        tel = obs.get()
        t0 = time.perf_counter()
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            if tel is not None:
                self._note_lookup(tel, "miss", path, t0)
            return None
        if (entry.get("schema") != CACHE_SCHEMA
                or entry.get("key") != key
                or not isinstance(entry.get("payload"), dict)):
            self.misses += 1
            if tel is not None:
                self._note_lookup(tel, "miss", path, t0)
            return None
        self.hits += 1
        if tel is not None:
            self._note_lookup(tel, "hit", path, t0)
        return entry["payload"]

    def put(self, key: str, payload: dict, artifact: str = "") -> str:
        """Store one payload atomically; returns the entry path."""
        tel = obs.get()
        t0 = time.perf_counter()
        os.makedirs(self.directory, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "artifact": artifact,
            "written": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "payload": payload,
        }
        body = json.dumps(entry, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if tel is not None:
            tel.counter("sweep_cache_writes").inc()
            tel.counter("sweep_cache_written_bytes").inc(len(body))
            tel.histogram("sweep_cache_write_s").observe(
                time.perf_counter() - t0)
        return self.path_for(key)

    def memo(self, key: str, producer, artifact: str = "") -> dict:
        """Get-or-compute: return the cached payload for ``key``, or
        run ``producer()`` and store its result atomically.

        Cross-process memoization for small derived payloads -- e.g.
        the serving plane's per-plan warm profiles, which every worker
        process needs but only one should ever measure.  Losing a
        write race is harmless: the key is content-addressed, so both
        writers store the same entry.
        """
        payload = self.get(key)
        if payload is not None:
            return payload
        payload = producer()
        self.put(key, payload, artifact=artifact)
        return payload

    def keys(self) -> list[str]:
        """Keys of every entry currently in the directory."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(n[:-5] for n in names
                      if n.endswith(".json"))

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for key in self.keys():
            try:
                os.unlink(self.path_for(key))
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return len(self.keys())
