"""CLI: ``python -m repro.sweep [runall options]``.

``runall`` with the sweep defaults switched on: the result cache
enabled and one worker per CPU (capped at 8) unless the invocation says
otherwise.  All ``runall`` flags pass through, e.g.::

    python -m repro.sweep --only 7.1 7.2 --out results --csv
    python -m repro.sweep --jobs 2            # override the default pool
"""

from __future__ import annotations

import os
import sys

from repro.harness.runall import main as runall_main

MAX_DEFAULT_JOBS = 8


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not any(a == "--cache" or a.startswith("--cache-dir")
               for a in argv):
        argv.append("--cache")
    if not any(a == "--jobs" or a.startswith("--jobs=") for a in argv):
        argv += ["--jobs", str(min(MAX_DEFAULT_JOBS,
                                   os.cpu_count() or 1))]
    return runall_main(argv)


if __name__ == "__main__":
    sys.exit(main())
