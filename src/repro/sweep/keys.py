"""Content-addressed cache keys: code digests + calibration identity.

A cached artifact result is only valid while three things hold: the
code that produces it, the calibration coefficients it was priced with,
and the artifact's own parameters.  :func:`artifact_key` hashes all
three into one key:

* **code digest** -- :class:`CodeGraph` parses every module of the
  ``repro`` package with :mod:`ast` (no imports are executed) and
  builds the static import graph, *including* lazy function-level
  imports.  A producer's digest covers the transitive closure of
  modules its defining module can reach, plus the ``__init__`` of every
  enclosing package (importing ``a.b.c`` executes them).  Editing a
  kernel generator, a cost table or an accelerator therefore changes
  the digest of exactly the artifacts whose producers can reach the
  edited module -- and nothing else.
* **calibration fingerprint** --
  :meth:`repro.energy.calibration.Calibration.fingerprint`, a content
  hash of every coefficient.
* **artifact parameters** -- the spec's ``(kind, name, params)`` and
  the producer's qualified name.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
import json
import os
from functools import lru_cache
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.energy.calibration import Calibration
    from repro.harness.registry import ArtifactSpec

#: Bump when the key layout (not the hashed content) changes.
KEY_SCHEMA = "repro.sweep.key.v1"


def _package_root(package: str) -> str:
    spec = importlib.util.find_spec(package)
    if spec is None or not spec.submodule_search_locations:
        raise ImportError(f"cannot locate package {package!r}")
    return list(spec.submodule_search_locations)[0]


class CodeGraph:
    """Static import graph of one package's sources.

    Built purely from the files on disk at construction time; construct
    a fresh instance (or call :func:`code_graph.cache_clear`) to pick up
    edits.
    """

    def __init__(self, package: str, root: str | os.PathLike | None = None
                 ) -> None:
        self.package = package
        self.root = str(root) if root is not None else _package_root(package)
        self.files: dict[str, str] = {}      # module name -> file path
        self.packages: set[str] = set()      # names that are __init__.py
        self._scan()
        self.source_sha: dict[str, str] = {
            name: hashlib.sha256(_read_bytes(path)).hexdigest()
            for name, path in self.files.items()}
        self.edges: dict[str, frozenset[str]] = {
            name: self._imports_of(name, path)
            for name, path in self.files.items()}

    # -- construction -------------------------------------------------------

    def _scan(self) -> None:
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__")
            rel = os.path.relpath(dirpath, self.root)
            parts = [] if rel == "." else rel.split(os.sep)
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                if filename == "__init__.py":
                    name = ".".join([self.package, *parts])
                    self.packages.add(name)
                else:
                    name = ".".join([self.package, *parts, filename[:-3]])
                self.files[name] = os.path.join(dirpath, filename)

    def _imports_of(self, name: str, path: str) -> frozenset[str]:
        try:
            tree = ast.parse(_read_bytes(path))
        except SyntaxError:
            return frozenset()
        out: set[str] = set()

        def add(candidate: str) -> None:
            # resolve to the longest known module prefix (``from m import
            # attr`` names either a submodule or an attribute of m)
            while candidate:
                if candidate in self.files:
                    out.add(candidate)
                    return
                candidate = candidate.rpartition(".")[0]

        own_pkg = name if name in self.packages \
            else name.rpartition(".")[0]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = own_pkg
                    for _ in range(node.level - 1):
                        base = base.rpartition(".")[0]
                    if node.module:
                        base = f"{base}.{node.module}" if base \
                            else node.module
                else:
                    base = node.module or ""
                add(base)
                for alias in node.names:
                    add(f"{base}.{alias.name}" if base else alias.name)
        out.discard(name)
        return frozenset(out)

    # -- queries ------------------------------------------------------------

    def _ancestors(self, name: str) -> set[str]:
        out = set()
        while "." in name:
            name = name.rpartition(".")[0]
            if name in self.files:
                out.add(name)
        return out

    def closure(self, module: str) -> frozenset[str]:
        """``module`` plus every package module it can transitively
        reach through static imports (and the enclosing ``__init__``s,
        which importing it executes)."""
        if module not in self.files:
            raise KeyError(f"{module!r} is not a module of "
                           f"{self.package!r}")
        seen: set[str] = set()
        frontier = [module]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._ancestors(current) - seen)
            frontier.extend(self.edges.get(current, ()) - seen)
        return frozenset(seen)

    def digest(self, module: str) -> str:
        """Content hash over the sources of ``module``'s closure."""
        pairs = sorted((name, self.source_sha[name])
                       for name in self.closure(module))
        blob = json.dumps(pairs)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _read_bytes(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


@lru_cache(maxsize=4)
def code_graph(package: str = "repro") -> CodeGraph:
    """Process-cached graph of ``package``.

    The cache assumes sources do not change underneath a running
    process; tools that edit sources and re-key (tests) should build
    :class:`CodeGraph` instances directly.
    """
    return CodeGraph(package)


def artifact_key(spec: "ArtifactSpec",
                 calibration: "Calibration | None" = None,
                 graph: CodeGraph | None = None) -> str:
    """The content-addressed cache key of one artifact.

    ``spec`` is an :class:`repro.harness.registry.ArtifactSpec`;
    ``calibration`` defaults to the process default
    :data:`~repro.energy.calibration.CALIBRATION`.
    """
    from repro.energy.calibration import CALIBRATION

    if graph is None:
        graph = code_graph(spec.producer_module.partition(".")[0])
    cal = calibration if calibration is not None else CALIBRATION
    payload = {
        "schema": KEY_SCHEMA,
        "kind": spec.kind,
        "name": spec.name,
        "params": [[str(k), repr(v)] for k, v in spec.params],
        "producer": f"{spec.producer_module}."
                    f"{spec.producer.__qualname__}",
        "code": graph.digest(spec.producer_module),
        "calibration": cal.fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
