"""Process-pool sweep engine with memoized artifact results.

Runs a list of :class:`~repro.harness.registry.ArtifactSpec` tasks --
the paper's full artifact cross-product, or any ``--only`` slice of it
-- either inline (``jobs=1``) or fanned out over worker processes,
memoizing each task's payload in a
:class:`~repro.sweep.cache.ResultCache` keyed by
:func:`~repro.sweep.keys.artifact_key`.  A warm cache therefore replays
the whole sweep without running a single Pete/Monte/Billie simulation.

Robustness: every task gets a per-task timeout (pooled runs), a bounded
number of retries, and graceful degradation -- a task that keeps
failing is reported and *skipped*, never fatal to the sweep.  Pooled
tasks each run in a dedicated worker process, so the timeout clock
starts when the task actually starts (queued tasks are never falsely
timed out) and a genuinely hung simulation is killed, freeing its slot
instead of stalling the sweep.  Cache entries and ledger records are
written as each task completes, so an interrupted cold sweep still
warms the cache for its rerun.  Each task emits one ``sweep`` record
(status, attempts, wall-clock, cycles, energy) into the
:mod:`repro.regress` ledger, so ``python -m repro.regress diff`` can
compare serial vs parallel or cold vs warm runs shard-against-shard.
"""

from __future__ import annotations

import functools
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait

from typing import TYPE_CHECKING

from repro.sweep.keys import artifact_key

if TYPE_CHECKING:
    from repro.energy.calibration import Calibration

#: Per-task wall-clock budget in pooled runs, measured from the moment
#: the task's worker process starts (inline runs are not preemptible
#: and ignore it).
DEFAULT_TIMEOUT_S = 600.0
#: Additional attempts after the first failure.
DEFAULT_RETRIES = 1

#: Grace period between SIGTERM and SIGKILL when reaping a hung worker.
_KILL_GRACE_S = 5.0


def _compute_payload(kind: str, name: str,
                     calibration: "Calibration | None" = None,
                     fast: bool | None = None) -> dict:
    """Default task body (top-level so pool workers can unpickle it).

    ``calibration`` installs the matching
    :class:`~repro.model.system.SystemModel` around the producer, so a
    worker process -- which does not share the parent's session state
    under ``spawn``/``forkserver`` start methods -- prices with the
    same calibration the result will be cached under.  ``fast`` pins
    ``$REPRO_PETE_FAST`` in the worker before the first kernel is
    measured, so pooled tasks run the same interpreter path as the
    parent regardless of start method.
    """
    from repro.harness.registry import get_spec

    if fast is not None:
        import os

        os.environ["REPRO_PETE_FAST"] = "1" if fast else "0"
    spec = get_spec(kind, name)
    if calibration is None:
        return spec.payload()
    from repro.model.system import SystemModel, use_model

    with use_model(SystemModel(calibration)):
        return spec.payload()


def _pool_worker(conn, compute, kind: str, name: str) -> None:
    """Run one task in a dedicated process, reporting over ``conn``."""
    try:
        message = ("ok", compute(kind, name))
    except BaseException as exc:
        message = ("error", f"{type(exc).__name__}: {exc}")
    try:
        conn.send(message)
    except Exception as exc:
        conn.send(("error", f"unsendable result: "
                            f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def _reap(proc) -> None:
    """Terminate a worker, escalating to SIGKILL if it ignores SIGTERM."""
    proc.terminate()
    proc.join(timeout=_KILL_GRACE_S)
    if proc.is_alive():
        proc.kill()
        proc.join()


@dataclass
class TaskOutcome:
    """What happened to one artifact task."""

    kind: str
    name: str
    status: str                 # "hit" | "computed" | "failed"
    wall_s: float = 0.0
    attempts: int = 0
    error: str | None = None
    payload: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("hit", "computed")

    @property
    def artifact(self) -> str:
        return f"{self.kind}_{self.name}"


@dataclass
class SweepResult:
    """Outcomes of one engine run, in task order."""

    outcomes: list[TaskOutcome]
    jobs: int

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "hit")

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "computed")

    @property
    def failed(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def summary(self) -> str:
        return (f"sweep: {len(self.outcomes)} artifacts, "
                f"{self.hits} cached, {self.computed} computed, "
                f"{len(self.failed)} failed, jobs={self.jobs}")


class SweepEngine:
    """Executes artifact tasks with caching, retry and timeouts.

    ``cache=None`` disables memoization; ``ledger=None`` uses the
    env-gated default (:func:`repro.regress.ledger.default_ledger`), so
    unit tests stay IO-free.  ``calibration`` is folded into the cache
    key *and* threaded into the default task body, which installs it
    around the producer in every worker -- pooled results are always
    priced with the calibration they are cached under.  ``compute`` is
    injectable for tests; an injected compute is responsible for its
    own calibration handling (the engine still keys the cache with
    ``calibration``).
    """

    def __init__(self, jobs: int = 1, cache=None,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 retries: int = DEFAULT_RETRIES,
                 ledger=None, calibration=None, compute=None,
                 fast: bool | None = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        if ledger is None:
            from repro.regress.ledger import default_ledger

            ledger = default_ledger()
        self.ledger = ledger
        self.calibration = calibration
        self.fast = fast
        if compute is None:
            compute = _compute_payload
            if calibration is not None or fast is not None:
                compute = functools.partial(_compute_payload,
                                            calibration=calibration,
                                            fast=fast)
        self.compute = compute

    # -- public API ---------------------------------------------------------

    def run(self, specs) -> SweepResult:
        specs = list(specs)
        outcomes: dict[tuple[str, str], TaskOutcome] = {}
        keys: dict[tuple[str, str], str] = {}

        pending = []
        for spec in specs:
            if self.cache is not None:
                start = time.perf_counter()
                keys[spec.key] = artifact_key(
                    spec, calibration=self.calibration)
                payload = self.cache.get(keys[spec.key])
                if payload is not None:
                    outcome = TaskOutcome(
                        spec.kind, spec.name, "hit",
                        wall_s=time.perf_counter() - start,
                        payload=payload)
                    outcomes[spec.key] = outcome
                    self.ledger.append(self._record(outcome))
                    continue
            pending.append(spec)

        if pending:
            if self.jobs > 1:
                self._run_pool(pending, outcomes, keys)
            else:
                self._run_inline(pending, outcomes, keys)
        return SweepResult([outcomes[spec.key] for spec in specs],
                           jobs=self.jobs)

    # -- completion ---------------------------------------------------------

    def _finish(self, spec, outcome: TaskOutcome, keys) -> None:
        """Persist one settled task immediately, so an interrupted
        sweep keeps every already-computed payload."""
        if outcome.status == "computed" and self.cache is not None:
            self.cache.put(keys[spec.key], outcome.payload,
                           artifact=outcome.artifact)
        self.ledger.append(self._record(outcome))

    # -- execution paths ----------------------------------------------------

    def _run_inline(self, pending, outcomes, keys) -> None:
        for spec in pending:
            start = time.perf_counter()
            error = None
            for attempt in range(1, self.retries + 2):
                try:
                    payload = self.compute(spec.kind, spec.name)
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    continue
                outcomes[spec.key] = TaskOutcome(
                    spec.kind, spec.name, "computed",
                    wall_s=time.perf_counter() - start,
                    attempts=attempt, payload=payload)
                break
            else:
                outcomes[spec.key] = TaskOutcome(
                    spec.kind, spec.name, "failed",
                    wall_s=time.perf_counter() - start,
                    attempts=self.retries + 1, error=error)
            self._finish(spec, outcomes[spec.key], keys)

    def _run_pool(self, pending, outcomes, keys) -> None:
        """One dedicated worker process per task attempt.

        At most ``self.jobs`` workers run at once.  Each worker reports
        over a pipe; its deadline is measured from ``Process.start()``,
        and a worker that outlives it is killed -- the slot frees up
        for the queued/retried tasks instead of the sweep blocking on a
        hung simulation.
        """
        ctx = multiprocessing.get_context()
        queue = deque((spec, 1) for spec in pending)
        first_start: dict[tuple[str, str], float] = {}
        running: dict[object, tuple] = {}   # recv conn -> (proc, spec, n, t0)

        def settle(spec, attempt, status, payload=None, error=None):
            outcome = TaskOutcome(
                spec.kind, spec.name, status,
                wall_s=time.perf_counter() - first_start[spec.key],
                attempts=attempt, error=error, payload=payload)
            outcomes[spec.key] = outcome
            self._finish(spec, outcome, keys)

        def retry_or_fail(spec, attempt, error):
            if attempt <= self.retries:
                queue.append((spec, attempt + 1))
            else:
                settle(spec, attempt, "failed", error=error)

        try:
            while queue or running:
                while queue and len(running) < self.jobs:
                    spec, attempt = queue.popleft()
                    recv, send = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_pool_worker,
                        args=(send, self.compute, spec.kind, spec.name),
                        daemon=True)
                    proc.start()
                    send.close()
                    first_start.setdefault(spec.key, time.perf_counter())
                    running[recv] = (proc, spec, attempt,
                                     time.perf_counter())

                now = time.perf_counter()
                budget = min(t0 + self.timeout_s
                             for _, _, _, t0 in running.values()) - now
                for conn in _connection_wait(list(running),
                                             timeout=max(0.0, budget)):
                    proc, spec, attempt, _ = running.pop(conn)
                    try:
                        status, value = conn.recv()
                    except EOFError:
                        status, value = "error", None
                    conn.close()
                    proc.join()
                    if status == "ok":
                        settle(spec, attempt, "computed", payload=value)
                    else:
                        error = value or (f"worker died (exit code "
                                          f"{proc.exitcode})")
                        retry_or_fail(spec, attempt, error)

                now = time.perf_counter()
                for conn, (proc, spec, attempt, t0) in list(running.items()):
                    if now - t0 < self.timeout_s:
                        continue
                    del running[conn]
                    conn.close()
                    _reap(proc)
                    retry_or_fail(spec, attempt,
                                  f"timed out after {self.timeout_s:g}s")
        finally:
            # an interrupt/crash must not leak live workers
            for conn, (proc, _, _, _) in running.items():
                conn.close()
                _reap(proc)

    # -- ledger -------------------------------------------------------------

    def _record(self, outcome: TaskOutcome) -> dict:
        from repro.trace.record import bench_record

        payload = outcome.payload or {}
        return bench_record(
            outcome.artifact, kind="sweep",
            config=f"jobs={self.jobs}",
            cycles=payload.get("cycles", 0),
            energy_uj=payload.get("energy_uj", 0.0),
            wall_s=outcome.wall_s,
            data={
                "status": outcome.status,
                "attempts": outcome.attempts,
                "error": outcome.error,
                "cached": self.cache is not None,
                "fast": self.fast,
                "compute_wall_s": payload.get("wall_s"),
            })


def run_sweep(specs, jobs: int = 1, cache=None, **kwargs) -> SweepResult:
    """Convenience wrapper: build an engine, run ``specs`` through it."""
    return SweepEngine(jobs=jobs, cache=cache, **kwargs).run(specs)
