"""Process-pool sweep engine with memoized artifact results.

Runs a list of :class:`~repro.harness.registry.ArtifactSpec` tasks --
the paper's full artifact cross-product, or any ``--only`` slice of it
-- either inline (``jobs=1``) or on a :class:`ProcessPoolExecutor`,
memoizing each task's payload in a
:class:`~repro.sweep.cache.ResultCache` keyed by
:func:`~repro.sweep.keys.artifact_key`.  A warm cache therefore replays
the whole sweep without running a single Pete/Monte/Billie simulation.

Robustness: every task gets a per-task timeout (pooled runs), a bounded
number of retries, and graceful degradation -- a task that keeps
failing is reported and *skipped*, never fatal to the sweep.  Each task
emits one ``sweep`` record (status, attempts, wall-clock, cycles,
energy) into the :mod:`repro.regress` ledger, so
``python -m repro.regress diff`` can compare serial vs parallel or cold
vs warm runs shard-against-shard.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass

from repro.sweep.keys import artifact_key

#: Per-task wall-clock budget in pooled runs (inline runs are not
#: preemptible and ignore it).
DEFAULT_TIMEOUT_S = 600.0
#: Additional attempts after the first failure.
DEFAULT_RETRIES = 1


def _compute_payload(kind: str, name: str) -> dict:
    """Default task body (top-level so pool workers can unpickle it)."""
    from repro.harness.registry import get_spec

    return get_spec(kind, name).payload()


@dataclass
class TaskOutcome:
    """What happened to one artifact task."""

    kind: str
    name: str
    status: str                 # "hit" | "computed" | "failed"
    wall_s: float = 0.0
    attempts: int = 0
    error: str | None = None
    payload: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("hit", "computed")

    @property
    def artifact(self) -> str:
        return f"{self.kind}_{self.name}"


@dataclass
class SweepResult:
    """Outcomes of one engine run, in task order."""

    outcomes: list[TaskOutcome]
    jobs: int

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "hit")

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "computed")

    @property
    def failed(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def summary(self) -> str:
        return (f"sweep: {len(self.outcomes)} artifacts, "
                f"{self.hits} cached, {self.computed} computed, "
                f"{len(self.failed)} failed, jobs={self.jobs}")


class SweepEngine:
    """Executes artifact tasks with caching, retry and timeouts.

    ``cache=None`` disables memoization; ``ledger=None`` uses the
    env-gated default (:func:`repro.regress.ledger.default_ledger`), so
    unit tests stay IO-free.  ``compute`` is injectable for tests; the
    default resolves the spec in the worker and builds its payload.
    ``calibration`` only affects the cache key -- installing a
    non-default calibration for the *computation* is the session's job
    (:func:`repro.api.open_session`).
    """

    def __init__(self, jobs: int = 1, cache=None,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 retries: int = DEFAULT_RETRIES,
                 ledger=None, calibration=None, compute=None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        if ledger is None:
            from repro.regress.ledger import default_ledger

            ledger = default_ledger()
        self.ledger = ledger
        self.calibration = calibration
        self.compute = compute or _compute_payload

    # -- public API ---------------------------------------------------------

    def run(self, specs) -> SweepResult:
        specs = list(specs)
        outcomes: dict[tuple[str, str], TaskOutcome] = {}
        keys: dict[tuple[str, str], str] = {}

        pending = []
        for spec in specs:
            if self.cache is not None:
                start = time.perf_counter()
                keys[spec.key] = artifact_key(
                    spec, calibration=self.calibration)
                payload = self.cache.get(keys[spec.key])
                if payload is not None:
                    outcomes[spec.key] = TaskOutcome(
                        spec.kind, spec.name, "hit",
                        wall_s=time.perf_counter() - start,
                        payload=payload)
                    continue
            pending.append(spec)

        if pending:
            if self.jobs > 1:
                self._run_pool(pending, outcomes)
            else:
                self._run_inline(pending, outcomes)

        for spec in specs:
            outcome = outcomes[spec.key]
            if outcome.status == "computed" and self.cache is not None:
                self.cache.put(keys[spec.key], outcome.payload,
                               artifact=outcome.artifact)
            self.ledger.append(self._record(outcome))
        return SweepResult([outcomes[spec.key] for spec in specs],
                           jobs=self.jobs)

    # -- execution paths ----------------------------------------------------

    def _run_inline(self, pending, outcomes) -> None:
        for spec in pending:
            start = time.perf_counter()
            error = None
            for attempt in range(1, self.retries + 2):
                try:
                    payload = self.compute(spec.kind, spec.name)
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    continue
                outcomes[spec.key] = TaskOutcome(
                    spec.kind, spec.name, "computed",
                    wall_s=time.perf_counter() - start,
                    attempts=attempt, payload=payload)
                break
            else:
                outcomes[spec.key] = TaskOutcome(
                    spec.kind, spec.name, "failed",
                    wall_s=time.perf_counter() - start,
                    attempts=self.retries + 1, error=error)

    def _run_pool(self, pending, outcomes) -> None:
        attempts = {spec.key: 0 for spec in pending}
        errors: dict[tuple[str, str], str] = {}
        started = {spec.key: time.perf_counter() for spec in pending}
        remaining = list(pending)
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            for _ in range(self.retries + 1):
                if not remaining:
                    break
                futures = {spec.key: pool.submit(self.compute, spec.kind,
                                                 spec.name)
                           for spec in remaining}
                retry = []
                for spec in remaining:
                    attempts[spec.key] += 1
                    try:
                        payload = futures[spec.key].result(
                            timeout=self.timeout_s)
                    except FutureTimeout:
                        futures[spec.key].cancel()
                        errors[spec.key] = (f"timed out after "
                                            f"{self.timeout_s:g}s")
                        retry.append(spec)
                        continue
                    except Exception as exc:
                        errors[spec.key] = f"{type(exc).__name__}: {exc}"
                        retry.append(spec)
                        continue
                    outcomes[spec.key] = TaskOutcome(
                        spec.kind, spec.name, "computed",
                        wall_s=time.perf_counter() - started[spec.key],
                        attempts=attempts[spec.key], payload=payload)
                remaining = retry
        for spec in remaining:
            outcomes[spec.key] = TaskOutcome(
                spec.kind, spec.name, "failed",
                wall_s=time.perf_counter() - started[spec.key],
                attempts=attempts[spec.key], error=errors.get(spec.key))

    # -- ledger -------------------------------------------------------------

    def _record(self, outcome: TaskOutcome) -> dict:
        from repro.trace.record import bench_record

        payload = outcome.payload or {}
        return bench_record(
            outcome.artifact, kind="sweep",
            config=f"jobs={self.jobs}",
            cycles=payload.get("cycles", 0),
            energy_uj=payload.get("energy_uj", 0.0),
            wall_s=outcome.wall_s,
            data={
                "status": outcome.status,
                "attempts": outcome.attempts,
                "error": outcome.error,
                "cached": self.cache is not None,
                "compute_wall_s": payload.get("wall_s"),
            })


def run_sweep(specs, jobs: int = 1, cache=None, **kwargs) -> SweepResult:
    """Convenience wrapper: build an engine, run ``specs`` through it."""
    return SweepEngine(jobs=jobs, cache=cache, **kwargs).run(specs)
