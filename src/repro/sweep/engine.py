"""Process-pool sweep engine with memoized artifact results.

Runs a list of :class:`~repro.harness.registry.ArtifactSpec` tasks --
the paper's full artifact cross-product, or any ``--only`` slice of it
-- either inline (``jobs=1``) or fanned out over worker processes,
memoizing each task's payload in a
:class:`~repro.sweep.cache.ResultCache` keyed by
:func:`~repro.sweep.keys.artifact_key`.  A warm cache therefore replays
the whole sweep without running a single Pete/Monte/Billie simulation.

Robustness: every task gets a per-task timeout (pooled runs), a bounded
number of retries, and graceful degradation -- a task that keeps
failing is reported and *skipped*, never fatal to the sweep.  Pooled
tasks each run in a dedicated worker process, so the timeout clock
starts when the task actually starts (queued tasks are never falsely
timed out) and a genuinely hung simulation is killed, freeing its slot
instead of stalling the sweep.  Cache entries and ledger records are
written as each task completes, so an interrupted cold sweep still
warms the cache for its rerun.  Each task emits one ``sweep`` record
(status, attempts, wall-clock, cycles, energy) into the
:mod:`repro.regress` ledger, so ``python -m repro.regress diff`` can
compare serial vs parallel or cold vs warm runs shard-against-shard.
"""

from __future__ import annotations

import functools
import multiprocessing
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait

from typing import TYPE_CHECKING

from repro import obs
from repro.sweep.keys import artifact_key

if TYPE_CHECKING:
    from repro.energy.calibration import Calibration

#: Per-task wall-clock budget in pooled runs, measured from the moment
#: the task's worker process starts (inline runs are not preemptible
#: and ignore it).
DEFAULT_TIMEOUT_S = 600.0
#: Additional attempts after the first failure.
DEFAULT_RETRIES = 1

#: Grace period between SIGTERM and SIGKILL when reaping a hung worker.
_KILL_GRACE_S = 5.0


def _compute_payload(kind: str, name: str,
                     calibration: "Calibration | None" = None,
                     fast: bool | None = None) -> dict:
    """Default task body (top-level so pool workers can unpickle it).

    ``calibration`` installs the matching
    :class:`~repro.model.system.SystemModel` around the producer, so a
    worker process -- which does not share the parent's session state
    under ``spawn``/``forkserver`` start methods -- prices with the
    same calibration the result will be cached under.  ``fast`` pins
    ``$REPRO_PETE_FAST`` in the worker before the first kernel is
    measured, so pooled tasks run the same interpreter path as the
    parent regardless of start method.
    """
    from repro.harness.registry import get_spec

    if fast is not None:
        import os

        os.environ["REPRO_PETE_FAST"] = "1" if fast else "0"
    spec = get_spec(kind, name)
    if calibration is None:
        return spec.payload()
    from repro.model.system import SystemModel, use_model

    with use_model(SystemModel(calibration)):
        return spec.payload()


#: The fast-path activity counters the engine reports per run.
_FASTPATH_KEYS = ("blocks_discovered", "blocks_compiled",
                  "code_cache_hits", "deopt_runs")


def _fastpath_counters() -> dict[str, int]:
    """Current :data:`repro.pete.fastpath.RUNTIME_STATS`, without
    importing the pete stack into processes that never simulate."""
    mod = sys.modules.get("repro.pete.fastpath")
    if mod is None:
        return {}
    return mod.runtime_stats_snapshot()


def _fastpath_delta(base: dict[str, int]) -> dict[str, int] | None:
    """Counter movement since ``base`` (``None`` if pete never ran)."""
    now = _fastpath_counters()
    if not now and not base:
        return None
    return {k: now.get(k, 0) - base.get(k, 0) for k in _FASTPATH_KEYS}


#: The service-plane counters the engine reports per run.
_SERVE_KEYS = ("requests_served", "requests_shed", "batches_formed",
               "lanes_dispatched")


def _serve_counters() -> dict[str, int]:
    """Current :data:`repro.serve.service.RUNTIME_STATS`, without
    importing the service plane into processes that never serve."""
    mod = sys.modules.get("repro.serve.service")
    if mod is None:
        return {}
    return mod.runtime_stats_snapshot()


def _serve_delta(base: dict[str, int]) -> dict[str, int] | None:
    """Counter movement since ``base`` (``None`` if nothing served)."""
    now = _serve_counters()
    if not now and not base:
        return None
    return {k: now.get(k, 0) - base.get(k, 0) for k in _SERVE_KEYS}


def _pool_worker(conn, compute, kind: str, name: str,
                 obs_ctx: dict | None = None) -> None:
    """Run one task in a dedicated process, reporting over ``conn``.

    The message is ``(status, value, extras)``: extras carry the
    worker's fast-path counter delta (measured against this process's
    own baseline, so a forked parent's counts never leak in) and -- when
    ``obs_ctx`` joined it to the parent's trace -- the drained telemetry
    snapshot, whose spans are parented under the dispatching task span.
    """
    if obs_ctx is not None:
        obs.activate_from(obs_ctx)
    base = _fastpath_counters()
    span = obs.span("sweep.worker", kind=kind, task=name).start()
    try:
        message = ("ok", compute(kind, name))
        span.finish("ok")
    except BaseException as exc:
        span.finish("error")
        message = ("error", f"{type(exc).__name__}: {exc}")
    extras = {"fastpath": _fastpath_delta(base), "telemetry": obs.drain()}
    try:
        conn.send((*message, extras))
    except Exception as exc:
        conn.send(("error", f"unsendable result: "
                            f"{type(exc).__name__}: {exc}", None))
    finally:
        conn.close()


def _reap(proc) -> None:
    """Terminate a worker, escalating to SIGKILL if it ignores SIGTERM."""
    proc.terminate()
    proc.join(timeout=_KILL_GRACE_S)
    if proc.is_alive():
        proc.kill()
        proc.join()


@dataclass
class TaskOutcome:
    """What happened to one artifact task."""

    kind: str
    name: str
    status: str                 # "hit" | "computed" | "failed"
    wall_s: float = 0.0
    attempts: int = 0
    error: str | None = None
    payload: dict | None = None
    reaped: int = 0             # attempts killed for exceeding timeout
    fastpath: dict[str, int] | None = None  # worker counter deltas

    @property
    def ok(self) -> bool:
        return self.status in ("hit", "computed")

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    @property
    def artifact(self) -> str:
        return f"{self.kind}_{self.name}"


@dataclass
class SweepResult:
    """Outcomes of one engine run, in task order."""

    outcomes: list[TaskOutcome]
    jobs: int
    #: ResultCache hit/miss movement during this run (0/0 uncached)
    cache_hits: int = 0
    cache_misses: int = 0
    #: fast-path compiler activity across the run -- the inline
    #: process's counter delta plus every pool worker's shipped delta
    fastpath: dict[str, int] = field(default_factory=dict)
    #: service-plane activity during the run (requests served by any
    #: in-process SigningService while the sweep was running)
    serve: dict[str, int] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "hit")

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "computed")

    @property
    def failed(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def reaped(self) -> int:
        return sum(o.reaped for o in self.outcomes)

    @property
    def retries(self) -> int:
        return sum(o.retries for o in self.outcomes)

    def summary(self) -> str:
        out = (f"sweep: {len(self.outcomes)} artifacts, "
               f"{self.hits} cached, {self.computed} computed, "
               f"{len(self.failed)} failed, jobs={self.jobs}"
               f"; cache {self.cache_hits} hits / "
               f"{self.cache_misses} misses")
        fp = self.fastpath
        if fp:
            out += (f"; fastpath {fp.get('blocks_compiled', 0)} compiled"
                    f" / {fp.get('code_cache_hits', 0)} code-cache hits")
        sv = self.serve
        if sv and sv.get("requests_served"):
            batches = sv.get("batches_formed", 0)
            occupancy = (sv.get("lanes_dispatched", 0) / batches
                         if batches else 0.0)
            out += (f"; serve {sv['requests_served']} served / "
                    f"{batches} batches "
                    f"(mean occupancy {occupancy:.1f})")
        if self.reaped:
            out += f"; {self.reaped} reaped"
        return out


class SweepEngine:
    """Executes artifact tasks with caching, retry and timeouts.

    ``cache=None`` disables memoization; ``ledger=None`` uses the
    env-gated default (:func:`repro.regress.ledger.default_ledger`), so
    unit tests stay IO-free.  ``calibration`` is folded into the cache
    key *and* threaded into the default task body, which installs it
    around the producer in every worker -- pooled results are always
    priced with the calibration they are cached under.  ``compute`` is
    injectable for tests; an injected compute is responsible for its
    own calibration handling (the engine still keys the cache with
    ``calibration``).
    """

    def __init__(self, jobs: int = 1, cache=None,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 retries: int = DEFAULT_RETRIES,
                 ledger=None, calibration=None, compute=None,
                 fast: bool | None = None,
                 mp_context: str | None = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        #: multiprocessing start method for pooled runs (``"fork"`` /
        #: ``"spawn"`` / ``None`` = platform default); injectable so
        #: the telemetry propagation tests cover both methods
        self.mp_context = mp_context
        self.cache = cache
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        if ledger is None:
            from repro.regress.ledger import default_ledger

            ledger = default_ledger()
        self.ledger = ledger
        self.calibration = calibration
        self.fast = fast
        if compute is None:
            compute = _compute_payload
            if calibration is not None or fast is not None:
                compute = functools.partial(_compute_payload,
                                            calibration=calibration,
                                            fast=fast)
        self.compute = compute

    # -- public API ---------------------------------------------------------

    def run(self, specs) -> SweepResult:
        specs = list(specs)
        outcomes: dict[tuple[str, str], TaskOutcome] = {}
        keys: dict[tuple[str, str], str] = {}
        cache_base = ((self.cache.hits, self.cache.misses)
                      if self.cache is not None else (0, 0))
        fastpath_base = _fastpath_counters()
        serve_base = _serve_counters()

        with obs.span("sweep.run", jobs=str(self.jobs),
                      tasks=str(len(specs))):
            pending = []
            for spec in specs:
                if self.cache is not None:
                    start = time.perf_counter()
                    keys[spec.key] = artifact_key(
                        spec, calibration=self.calibration)
                    payload = self.cache.get(keys[spec.key])
                    if payload is not None:
                        outcome = TaskOutcome(
                            spec.kind, spec.name, "hit",
                            wall_s=time.perf_counter() - start,
                            payload=payload)
                        outcomes[spec.key] = outcome
                        self.ledger.append(self._record(outcome))
                        self._note_outcome(outcome, emit_span=True)
                        continue
                pending.append(spec)

            if pending:
                if self.jobs > 1:
                    self._run_pool(pending, outcomes, keys)
                else:
                    self._run_inline(pending, outcomes, keys)

        result = SweepResult([outcomes[spec.key] for spec in specs],
                             jobs=self.jobs)
        if self.cache is not None:
            result.cache_hits = self.cache.hits - cache_base[0]
            result.cache_misses = self.cache.misses - cache_base[1]
        fastpath = _fastpath_delta(fastpath_base) or {}
        for outcome in result.outcomes:
            for key, value in (outcome.fastpath or {}).items():
                fastpath[key] = fastpath.get(key, 0) + value
        result.fastpath = fastpath
        result.serve = _serve_delta(serve_base) or {}
        return result

    def run_lanes(self, kernels, runner=None) -> SweepResult:
        """Fan homogeneous kernel tasks across in-process numpy lanes
        instead of worker processes.

        ``kernels`` is an iterable of ``(name, k, lanes)`` triples;
        each runs as one lock-step batch on the lane engine
        (:mod:`repro.pete.lanes`), which beats a process pool whenever
        the fleet is many instances of *one* program: state stays in
        dense arrays, dispatch is amortized over the batch, and there
        is no fork/pickle cost.  One :class:`TaskOutcome` per triple
        (``payload`` carries the per-lane cycle/instruction vectors and
        the engine's divergence accounting); one ledger record each,
        like :meth:`run`.
        """
        from repro.kernels.runner import KernelRunner

        kernels = list(kernels)
        if runner is None:
            runner = KernelRunner(ledger=self.ledger,
                                  calibration=self.calibration,
                                  fast=self.fast)
        outcomes: list[TaskOutcome] = []
        with obs.span("sweep.lanes", tasks=str(len(kernels))):
            for name, k, lanes in kernels:
                start = time.perf_counter()
                try:
                    batch = runner.measure_batch(name, k, lanes)
                except Exception as exc:
                    outcome = TaskOutcome(
                        "kernel", f"{name}:{k}", "failed",
                        wall_s=time.perf_counter() - start,
                        attempts=1,
                        error=f"{type(exc).__name__}: {exc}")
                else:
                    outcome = TaskOutcome(
                        "kernel", f"{name}:{k}", "computed",
                        wall_s=time.perf_counter() - start,
                        attempts=1,
                        payload={
                            "lanes": lanes,
                            "cycles": list(batch.cycles),
                            "instructions": list(batch.instructions),
                            "engine": batch.engine,
                            "wall_s": batch.wall_s,
                        })
                outcomes.append(outcome)
                self.ledger.append(self._record_lanes(outcome))
                self._note_outcome(outcome, emit_span=True)
        return SweepResult(outcomes, jobs=1)

    def _record_lanes(self, outcome: TaskOutcome) -> dict:
        from repro.trace.record import bench_record

        payload = outcome.payload or {}
        return bench_record(
            outcome.artifact, kind="lanes",
            config=f"lanes={payload.get('lanes', 0)}",
            cycles=sum(payload.get("cycles", ())),
            energy_uj=0.0,
            wall_s=outcome.wall_s,
            data={
                "status": outcome.status,
                "error": outcome.error,
                "engine": payload.get("engine"),
            },
        )

    def _note_outcome(self, outcome: TaskOutcome,
                      emit_span: bool = False) -> None:
        """Per-task telemetry: status counter, latency histogram,
        retry/reap counters; ``emit_span`` also records the task as an
        after-the-fact span (cache hits and inline tasks -- pooled
        attempts already hold live ``sweep.task`` spans)."""
        tel = obs.get()
        if tel is None:
            return
        tel.counter("sweep_tasks_total", status=outcome.status).inc()
        tel.histogram("sweep_task_wall_s").observe(outcome.wall_s)
        if outcome.retries:
            tel.counter("sweep_retries_total").inc(outcome.retries)
        if outcome.reaped:
            tel.counter("sweep_reaped_total").inc(outcome.reaped)
        if emit_span:
            tel.emit("sweep.task", wall_s=outcome.wall_s,
                     status="ok" if outcome.ok else "error",
                     kind=outcome.kind, task=outcome.name,
                     result=outcome.status)

    # -- completion ---------------------------------------------------------

    def _finish(self, spec, outcome: TaskOutcome, keys) -> None:
        """Persist one settled task immediately, so an interrupted
        sweep keeps every already-computed payload."""
        if outcome.status == "computed" and self.cache is not None:
            self.cache.put(keys[spec.key], outcome.payload,
                           artifact=outcome.artifact)
        self.ledger.append(self._record(outcome))

    # -- execution paths ----------------------------------------------------

    def _run_inline(self, pending, outcomes, keys) -> None:
        for spec in pending:
            start = time.perf_counter()
            error = None
            for attempt in range(1, self.retries + 2):
                try:
                    payload = self.compute(spec.kind, spec.name)
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    continue
                outcomes[spec.key] = TaskOutcome(
                    spec.kind, spec.name, "computed",
                    wall_s=time.perf_counter() - start,
                    attempts=attempt, payload=payload)
                break
            else:
                outcomes[spec.key] = TaskOutcome(
                    spec.kind, spec.name, "failed",
                    wall_s=time.perf_counter() - start,
                    attempts=self.retries + 1, error=error)
            self._finish(spec, outcomes[spec.key], keys)
            self._note_outcome(outcomes[spec.key], emit_span=True)

    def _run_pool(self, pending, outcomes, keys) -> None:
        """One dedicated worker process per task attempt.

        At most ``self.jobs`` workers run at once.  Each worker reports
        over a pipe; its deadline is measured from ``Process.start()``,
        and a worker that outlives it is killed -- the slot frees up
        for the queued/retried tasks instead of the sweep blocking on a
        hung simulation.
        """
        ctx = multiprocessing.get_context(self.mp_context)
        tel = obs.get()
        queue = deque((spec, 1) for spec in pending)
        first_start: dict[tuple[str, str], float] = {}
        reap_counts: dict[tuple[str, str], int] = {}
        fastpath_by_key: dict[tuple[str, str], dict[str, int]] = {}
        # recv conn -> (proc, spec, attempt, t0, task_span)
        running: dict[object, tuple] = {}

        def absorb_extras(spec, extras) -> None:
            """Fold a worker's shipped counters/telemetry into the run."""
            if not extras:
                return
            delta = extras.get("fastpath")
            if delta:
                acc = fastpath_by_key.setdefault(spec.key, {})
                for key, value in delta.items():
                    acc[key] = acc.get(key, 0) + value
            if tel is not None:
                tel.merge(extras.get("telemetry"))

        def settle(spec, attempt, status, payload=None, error=None):
            outcome = TaskOutcome(
                spec.kind, spec.name, status,
                wall_s=time.perf_counter() - first_start[spec.key],
                attempts=attempt, error=error, payload=payload,
                reaped=reap_counts.get(spec.key, 0),
                fastpath=fastpath_by_key.get(spec.key))
            outcomes[spec.key] = outcome
            self._finish(spec, outcome, keys)
            self._note_outcome(outcome)

        def retry_or_fail(spec, attempt, error):
            if attempt <= self.retries:
                queue.append((spec, attempt + 1))
            else:
                settle(spec, attempt, "failed", error=error)

        try:
            while queue or running:
                while queue and len(running) < self.jobs:
                    spec, attempt = queue.popleft()
                    recv, send = ctx.Pipe(duplex=False)
                    task_span = None
                    obs_ctx = None
                    if tel is not None:
                        task_span = tel.begin(
                            "sweep.task", kind=spec.kind, task=spec.name,
                            attempt=str(attempt))
                        obs_ctx = {"trace_id": tel.trace_id,
                                   "parent_id": task_span.span_id}
                    proc = ctx.Process(
                        target=_pool_worker,
                        args=(send, self.compute, spec.kind, spec.name,
                              obs_ctx),
                        daemon=True)
                    proc.start()
                    send.close()
                    first_start.setdefault(spec.key, time.perf_counter())
                    running[recv] = (proc, spec, attempt,
                                     time.perf_counter(), task_span)

                now = time.perf_counter()
                budget = min(t0 + self.timeout_s
                             for _, _, _, t0, _ in running.values()) - now
                for conn in _connection_wait(list(running),
                                             timeout=max(0.0, budget)):
                    proc, spec, attempt, _, task_span = running.pop(conn)
                    try:
                        status, value, extras = conn.recv()
                    except (EOFError, ValueError):
                        status, value, extras = "error", None, None
                    conn.close()
                    proc.join()
                    absorb_extras(spec, extras)
                    if task_span is not None:
                        task_span.annotate(result=status).finish(
                            "ok" if status == "ok" else "error")
                    if status == "ok":
                        settle(spec, attempt, "computed", payload=value)
                    else:
                        error = value or (f"worker died (exit code "
                                          f"{proc.exitcode})")
                        retry_or_fail(spec, attempt, error)

                now = time.perf_counter()
                for conn, (proc, spec, attempt, t0,
                           task_span) in list(running.items()):
                    if now - t0 < self.timeout_s:
                        continue
                    del running[conn]
                    conn.close()
                    _reap(proc)
                    reap_counts[spec.key] = reap_counts.get(spec.key, 0) + 1
                    if task_span is not None:
                        task_span.annotate(result="reaped").finish("error")
                    retry_or_fail(spec, attempt,
                                  f"timed out after {self.timeout_s:g}s")
        finally:
            # an interrupt/crash must not leak live workers (or spans)
            for conn, (proc, _, _, _, task_span) in running.items():
                conn.close()
                _reap(proc)
                if task_span is not None:
                    task_span.annotate(result="aborted").finish("error")

    # -- ledger -------------------------------------------------------------

    def _record(self, outcome: TaskOutcome) -> dict:
        from repro.trace.record import bench_record

        payload = outcome.payload or {}
        return bench_record(
            outcome.artifact, kind="sweep",
            config=f"jobs={self.jobs}",
            cycles=payload.get("cycles", 0),
            energy_uj=payload.get("energy_uj", 0.0),
            wall_s=outcome.wall_s,
            data={
                "status": outcome.status,
                "attempts": outcome.attempts,
                "retries": outcome.retries,
                "reaped": outcome.reaped,
                "error": outcome.error,
                "cached": self.cache is not None,
                "fast": self.fast,
                "compute_wall_s": payload.get("wall_s"),
                "fastpath": outcome.fastpath,
            })


def run_sweep(specs, jobs: int = 1, cache=None, **kwargs) -> SweepResult:
    """Convenience wrapper: build an engine, run ``specs`` through it."""
    return SweepEngine(jobs=jobs, cache=cache, **kwargs).run(specs)
