"""Parallel sweep engine with a content-addressed result cache.

The paper's evaluation is a full cross-product sweep -- six
hardware/software configurations x five security levels x {sign,
verify} for both GF(p) and GF(2^m).  This package runs that
cross-product as independent artifact tasks, in parallel, and memoizes
each task's result on disk keyed by *what produced it*: the producing
code's content (static import-closure digest), the calibration in
effect, and the artifact parameters.  A warm rerun of the full sweep
touches zero simulators; editing a kernel, cost table or accelerator
invalidates exactly the artifacts that can reach the edit.

* :mod:`repro.sweep.keys` -- code digests and cache keys;
* :mod:`repro.sweep.cache` -- the on-disk content-addressed store;
* :mod:`repro.sweep.engine` -- the process-pool executor (per-task
  timeout, bounded retry, failed-task skip, ledger records).

CLI: ``python -m repro.sweep`` (cached, parallel ``runall``); library:
:func:`repro.api.sweep`.
"""

from repro.sweep.cache import ResultCache, default_cache_dir
from repro.sweep.engine import (
    SweepEngine,
    SweepResult,
    TaskOutcome,
    run_sweep,
)
from repro.sweep.keys import CodeGraph, artifact_key, code_graph

__all__ = [
    "CodeGraph",
    "ResultCache",
    "SweepEngine",
    "SweepResult",
    "TaskOutcome",
    "artifact_key",
    "code_graph",
    "default_cache_dir",
    "run_sweep",
]
