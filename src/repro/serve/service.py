"""The always-on signing service: asyncio front-end over warm workers.

:class:`SigningService` accepts sign/verify/ecdh requests across
curves and pricing configs (:meth:`SigningService.submit`), coalesces
them in a bounded :class:`~repro.serve.queue.AdmissionQueue`, and
dispatches homogeneous micro-batches -- one per (kernel plan, config)
group -- to persistent worker processes (:mod:`repro.serve.worker`)
that execute them lock-step on the lane engine.  One dispatcher task
per worker keeps every worker busy on at most one batch while the
event loop keeps admitting, shedding and answering.

Life cycle::

    service = SigningService(ServeConfig(workers=2))
    await service.start()          # spawn + warm workers
    resp = await service.submit(ServeRequest("sign", "P-192"))
    await service.stop()           # drain in-flight, stop workers

Graceful shutdown: :meth:`drain` closes admission (new submits raise
:class:`~repro.serve.types.ServiceDraining`), lets queued and
in-flight batches finish, then stops every worker over its pipe and
joins the process -- escalating to ``terminate()`` only if a worker
ignores the stop.  :meth:`install_signal_handlers` wires SIGTERM and
SIGINT to exactly that path.

Accounting: the module-level :data:`RUNTIME_STATS` counters mirror
what the service serves (requests, batches, lanes, sheds), in the same
style as ``repro.pete.fastpath.RUNTIME_STATS`` -- the sweep engine and
``runall --stats-json`` surface their movement.  A ``kind="serve"``
ledger record is appended on :meth:`stop` so the regress ledger can
trend service efficiency (requests served, batches formed, mean batch
occupancy, latency quantiles) across PRs.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from dataclasses import dataclass

from repro import obs
from repro.serve.queue import AdmissionQueue, QueueEntry
from repro.serve.types import (
    RequestShed,
    ServeRequest,
    ServeResponse,
    ServiceDraining,
    WorkerFailure,
    plan_for,
)

#: Cross-engine counters in the same style as the fast path's; the
#: sweep engine snapshots them around a run and ``runall --stats-json``
#: emits their movement as ``serve_*`` fields.
RUNTIME_STATS: dict[str, int] = {
    "requests_served": 0,
    "requests_failed": 0,
    "requests_shed": 0,
    "batches_formed": 0,
    "lanes_dispatched": 0,
}


def runtime_stats_snapshot() -> dict[str, int]:
    """A point-in-time copy (delta baselines for callers)."""
    return dict(RUNTIME_STATS)


@dataclass
class ServeConfig:
    """Knobs of one service instance."""

    workers: int = 2
    max_depth: int = 256          # admission queue bound (backpressure)
    max_batch: int = 32           # lanes per dispatched micro-batch
    batch_window_s: float = 0.002  # linger for burst coalescing
    batch_timeout_s: float = 120.0  # per-batch worker deadline
    fast: bool = True             # superblock fast path in workers
    stock_target: int = 32        # LanePool restock level per plan
    calibration: object | None = None
    cache_dir: object | None = None   # shared warm cache (ResultCache)
    mp_context: str | None = None
    warm_plans: tuple = ()        # plans warmed at start (() = all)


class WorkerHandle:
    """One worker process + its pipe, driven from the event loop.

    Pipe receives block a thread-pool thread (``run_in_executor``), so
    the event loop never blocks on a busy worker.
    """

    def __init__(self, index: int, cfg: ServeConfig,
                 obs_ctx: dict | None = None) -> None:
        import multiprocessing

        from repro.serve.worker import worker_main
        from repro.sweep.cache import default_cache_dir

        ctx = multiprocessing.get_context(cfg.mp_context)
        self.index = index
        self.conn, child = ctx.Pipe(duplex=True)
        cache_dir = (str(cfg.cache_dir) if cfg.cache_dir
                     else default_cache_dir())
        self.proc = ctx.Process(
            target=worker_main,
            args=(child, index, cfg.calibration, cfg.fast,
                  cfg.stock_target, cache_dir, obs_ctx),
            daemon=True)
        self.proc.start()
        child.close()
        self.info: dict = {}
        self.batches = 0

    @property
    def pid(self) -> int | None:
        return self.proc.pid

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    async def call(self, message, timeout_s: float | None = None):
        """Send one message, await its reply off the event loop."""
        loop = asyncio.get_running_loop()
        self.conn.send(message)
        recv = loop.run_in_executor(None, self.conn.recv)
        if timeout_s is None:
            return await recv
        return await asyncio.wait_for(recv, timeout_s)

    async def stop(self, timeout_s: float = 10.0) -> dict | None:
        """Graceful worker stop; returns the worker's final report."""
        report = None
        try:
            reply = await self.call(("stop",), timeout_s)
            if reply and reply[0] == "bye":
                report = reply[1]
        except (OSError, EOFError, asyncio.TimeoutError):
            pass
        self.close(force=self.proc.is_alive())
        return report

    def close(self, force: bool = False) -> None:
        """Tear the worker down; never leaves an orphaned process."""
        try:
            self.conn.close()
        except OSError:
            pass
        if force:
            self.proc.terminate()
        self.proc.join(timeout=10.0)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.kill()
            self.proc.join()


class SigningService:
    """Long-lived sign/verify/ecdh service over warm lane batches."""

    def __init__(self, config: ServeConfig | None = None,
                 ledger=None, worker_factory=None) -> None:
        self.cfg = config or ServeConfig()
        if self.cfg.workers < 1:
            raise ValueError("ServeConfig.workers must be >= 1")
        self.queue = AdmissionQueue(self.cfg.max_depth)
        self._worker_factory = worker_factory or WorkerHandle
        self.workers: list = []
        self._dispatchers: list[asyncio.Task] = []
        self._live_dispatchers = 0
        self._seq = 0
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.started = False
        self.stopped = False
        self._t_start = 0.0
        self.profiles: dict[str, dict] = {}
        # service-side accounting (always on; obs mirrors when enabled)
        from repro.trace.metrics import Histogram

        self.latency = Histogram()
        self.requests_ok = 0
        self.requests_failed = 0
        self.batches = 0
        self.lanes = 0
        self.post_warm_compiles = 0
        self.worker_deaths = 0
        if ledger is None:
            from repro.regress.ledger import default_ledger

            ledger = default_ledger()
        self.ledger = ledger

    # -- life cycle ------------------------------------------------------

    async def start(self) -> "SigningService":
        """Spawn + warm the workers, then start the dispatchers."""
        if self.started:
            return self
        self._t_start = time.perf_counter()
        from repro.serve.types import PLANS

        plans = self.cfg.warm_plans or tuple(
            sorted({(p.kernel, p.k) for p in PLANS.values()}))
        obs_ctx = obs.propagation_context()
        with obs.span("serve.start", workers=str(self.cfg.workers)):
            self.workers = [self._worker_factory(i, self.cfg, obs_ctx)
                            for i in range(self.cfg.workers)]
            readies = await asyncio.gather(
                *(w.call(("init", plans),
                         timeout_s=self.cfg.batch_timeout_s)
                  for w in self.workers))
        for worker, reply in zip(self.workers, readies):
            if not reply or reply[0] != "ready":
                detail = reply[1] if reply else "no reply"
                await self._teardown_workers()
                raise WorkerFailure(
                    f"worker {worker.index} failed to start: {detail}")
            self.profiles.update(reply[1].get("profiles", {}))
        self._live_dispatchers = len(self.workers)
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(w),
                                name=f"serve-dispatch-{w.index}")
            for w in self.workers]
        self.started = True
        return self

    async def drain(self) -> None:
        """Close admission, finish queued + in-flight work."""
        self.queue.close()
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers,
                                 return_exceptions=True)
            self._dispatchers = []
        await self._idle.wait()

    async def stop(self) -> dict:
        """Drain, stop every worker, append the ``serve`` ledger
        record; returns the service counters."""
        if self.stopped:
            return self.counters()
        await self.drain()
        await self._teardown_workers()
        self.stopped = True
        counters = self.counters()
        self.ledger.append(self.serve_record())
        return counters

    async def _teardown_workers(self) -> None:
        tel = obs.get()
        for worker in self.workers:
            report = await worker.stop()
            if tel is not None and report and report.get("telemetry"):
                tel.merge(report["telemetry"])

    def install_signal_handlers(self,
                                loop: asyncio.AbstractEventLoop | None
                                = None) -> None:
        """SIGTERM/SIGINT -> graceful drain + stop (idempotent)."""
        loop = loop or asyncio.get_running_loop()

        def _initiate(signame: str) -> None:
            if not self.stopped:
                asyncio.ensure_future(self.stop())

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, _initiate, sig.name)
            except (NotImplementedError, RuntimeError):
                # non-unix event loops: shutdown stays explicit
                break

    # -- request path ----------------------------------------------------

    async def submit(self, request: ServeRequest) -> ServeResponse:
        """Admit one request and await its response.

        Raises the typed admission errors
        (:class:`~repro.serve.types.UnknownOperation`,
        :class:`~repro.serve.types.UnsupportedConfig`,
        :class:`~repro.serve.types.RequestShed`,
        :class:`~repro.serve.types.ServiceDraining`); execution
        failures come back as a ``status="failed"`` response instead,
        so one bad batch cannot masquerade as backpressure.
        """
        if not self.started or self.stopped:
            raise ServiceDraining("service is not running")
        request.validate()
        t0 = time.perf_counter()
        future: asyncio.Future = asyncio.get_running_loop(
        ).create_future()
        entry = QueueEntry(request=request, plan=plan_for(
            request.op, request.curve), future=future)
        try:
            self.queue.admit(entry)
        except RequestShed:
            RUNTIME_STATS["requests_shed"] += 1
            raise
        response: ServeResponse = await future
        response.latency_s = time.perf_counter() - t0
        self.latency.observe(response.latency_s)
        tel = obs.get()
        if tel is not None:
            tel.histogram("serve_request_latency_s").observe(
                response.latency_s)
            tel.counter("serve_requests_total", op=request.op,
                        curve=request.curve,
                        status=response.status).inc()
        return response

    # -- dispatch --------------------------------------------------------

    async def _dispatch_loop(self, worker) -> None:
        try:
            while True:
                batch = await self.queue.next_batch(
                    self.cfg.max_batch, self.cfg.batch_window_s)
                if batch is None:
                    return
                self._inflight += len(batch)
                self._idle.clear()
                try:
                    await self._run_batch(worker, batch)
                finally:
                    self._inflight -= len(batch)
                    if self._inflight == 0:
                        self._idle.set()
                if not worker.alive:
                    self.worker_deaths += 1
                    return
        finally:
            self._live_dispatchers -= 1
            if self._live_dispatchers == 0 and len(self.queue):
                # no one left to serve what is still queued
                self.queue.close()
                self.queue.flush(WorkerFailure(
                    "all workers lost; queued requests abandoned"))

    async def _run_batch(self, worker, batch: list[QueueEntry]) -> None:
        plan = batch[0].plan
        config = batch[0].request.config
        n = len(batch)
        self._seq += 1
        seq = self._seq
        with obs.span("serve.batch", worker=str(worker.index),
                      kernel=plan.label, lanes=str(n)) as span:
            try:
                reply = await worker.call(
                    ("batch", seq, plan.kernel, plan.k, n, config),
                    timeout_s=self.cfg.batch_timeout_s)
            except (OSError, EOFError, asyncio.TimeoutError) as exc:
                span.annotate(result="worker-lost")
                worker.close(force=True)
                self._fail_batch(batch, WorkerFailure(
                    f"worker {worker.index} lost mid-batch: "
                    f"{type(exc).__name__}"))
                return
        if reply[0] != "ok" or reply[1] != seq:
            error = reply[2] if len(reply) > 2 else f"bad reply {reply[0]!r}"
            self._fail_batch(batch, WorkerFailure(str(error)))
            return
        self._settle_batch(worker, batch, reply[2], plan, config)

    def _settle_batch(self, worker, batch, result, plan, config) -> None:
        worker.batches += 1
        self.batches += 1
        self.lanes += len(batch)
        RUNTIME_STATS["batches_formed"] += 1
        RUNTIME_STATS["lanes_dispatched"] += len(batch)
        if result.get("warm") and result.get("compiled", 0) > 0:
            self.post_warm_compiles += result["compiled"]
        tel = obs.get()
        if tel is not None:
            tel.histogram("serve_batch_occupancy").observe(len(batch))
            tel.counter("serve_batches_total").inc()
            if result.get("warm") and result.get("compiled", 0) > 0:
                tel.counter("serve_post_warm_compiles_total").inc(
                    result["compiled"])
        lanes = result["lanes"]
        for i, entry in enumerate(batch):
            lane = lanes[i]
            response = ServeResponse(
                request=entry.request, status="ok",
                kernel=plan.kernel, k=plan.k,
                cycles=lane["cycles"],
                instructions=lane["instructions"],
                energy_nj=lane["energy_nj"],
                queue_s=entry.queue_s - result["wall_s"],
                service_s=result["wall_s"],
                batch_size=len(batch), worker=worker.index)
            self.requests_ok += 1
            RUNTIME_STATS["requests_served"] += 1
            if not entry.future.done():
                entry.future.set_result(response)

    def _fail_batch(self, batch, exc: WorkerFailure) -> None:
        for entry in batch:
            self.requests_failed += 1
            RUNTIME_STATS["requests_failed"] += 1
            response = ServeResponse(
                request=entry.request, status="failed",
                batch_size=len(batch), error=str(exc))
            if not entry.future.done():
                entry.future.set_result(response)

    # -- reporting -------------------------------------------------------

    @property
    def mean_batch_occupancy(self) -> float:
        return self.lanes / self.batches if self.batches else 0.0

    def counters(self) -> dict:
        """Service-side accounting (loadgen reconciles against this)."""
        return {
            "requests_served": self.requests_ok,
            "requests_failed": self.requests_failed,
            "requests_shed": self.queue.shed,
            "admitted": self.queue.admitted,
            "batches_formed": self.batches,
            "lanes_dispatched": self.lanes,
            "mean_batch_occupancy": round(self.mean_batch_occupancy, 3),
            "post_warm_compiles": self.post_warm_compiles,
            "worker_deaths": self.worker_deaths,
            "workers": len(self.workers),
            "queue_depth": self.queue.depth,
            "latency": self.latency.summary(),
        }

    def serve_record(self) -> dict:
        """The ``kind="serve"`` ledger record for this service run."""
        from repro.trace.record import bench_record

        return bench_record(
            "serve", kind="serve",
            config=(f"workers={self.cfg.workers} "
                    f"max_batch={self.cfg.max_batch} "
                    f"max_depth={self.cfg.max_depth}"),
            wall_s=(time.perf_counter() - self._t_start
                    if self._t_start else 0.0),
            data=self.counters())


async def serve(config: ServeConfig | None = None) -> SigningService:
    """Construct and start a service (``await serve(...)``)."""
    return await SigningService(config).start()


def worker_pids(service: SigningService) -> list[int]:
    """Live worker pids (empty once the service stopped cleanly)."""
    return [w.pid for w in service.workers
            if getattr(w, "proc", None) is not None and w.alive]

