"""CLI for the signing service plane: boot, load, measure, gate.

``python -m repro.serve`` boots a :class:`SigningService`, drives it
with the open-loop generator (:mod:`repro.serve.loadgen`) at one or
more arrival rates, prints a per-rate summary, and writes

* ``BENCH_serve.json`` -- throughput, latency percentiles, shed rate,
  energy per request, service counters (via
  :func:`repro.trace.record.write_record`);
* ``telemetry.json`` / ``telemetry.om`` -- when ``--obs`` is on,
  including the service's request-latency and batch-occupancy
  histograms in the OpenMetrics export;
* a ``serve_stats.json`` counters dump for ``--stats-json``.

The exit code is the CI gate: nonzero when any request errored, when
the generator's books disagree with the service counters, or (with
``--require-warm``) when any post-warm batch compiled a block.

Usage::

    PYTHONPATH=src python -m repro.serve --requests 500 \
        --rates 200,800 --workers 2 --obs --require-warm \
        --out results/serve
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="signing-service load benchmark")
    parser.add_argument("--requests", type=int, default=500,
                        help="requests per rate phase (default 500)")
    parser.add_argument("--rates", default="500",
                        help="comma-separated offered arrival rates "
                             "in req/s (default '500')")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-depth", type=int, default=256)
    parser.add_argument("--window-ms", type=float, default=2.0,
                        help="batch linger window (default 2ms)")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--config", default="baseline",
                        help="pricing config stamped on requests")
    parser.add_argument("--uniform", action="store_true",
                        help="uniform inter-arrivals instead of "
                             "Poisson")
    parser.add_argument("--cache-dir", default=None,
                        help="shared warm cache directory (default: "
                             "the sweep cache)")
    parser.add_argument("--out", default="results/serve",
                        help="output directory (default results/serve)")
    parser.add_argument("--stats-json", default=None,
                        help="write service counters to this path")
    parser.add_argument("--obs", action="store_true",
                        help="enable telemetry and export it")
    parser.add_argument("--require-warm", action="store_true",
                        help="fail if any post-warm batch compiled")
    return parser


async def _run(args, rates: list[float]) -> tuple[dict, int]:
    from repro import obs
    from repro.serve.loadgen import LoadConfig, run_load
    from repro.serve.service import ServeConfig, SigningService

    cfg = ServeConfig(
        workers=args.workers, max_depth=args.max_depth,
        max_batch=args.max_batch,
        batch_window_s=args.window_ms / 1000.0,
        cache_dir=args.cache_dir)
    service = SigningService(cfg)
    service.install_signal_handlers()
    t0 = time.perf_counter()
    await service.start()
    boot_s = time.perf_counter() - t0
    print(f"service up: {args.workers} workers, "
          f"{len(service.profiles)} plans warmed in {boot_s:.2f}s")

    phases = []
    failures = 0
    for rate in rates:
        load = LoadConfig(requests=args.requests, rate_rps=rate,
                          poisson=not args.uniform, seed=args.seed,
                          config=args.config)
        report = await run_load(service, load)
        problems = report.reconcile(service.counters())
        failures += report.failed + len(problems)
        row = report.to_dict()
        row["rate_rps"] = rate
        row["reconcile"] = problems
        phases.append(row)
        lat = row["latency_s"]
        print(f"rate {rate:7.0f}/s: {report.completed} ok, "
              f"{report.shed} shed ({100 * report.shed_rate:.1f}%), "
              f"{report.failed} failed | "
              f"{report.throughput_rps:7.0f} req/s served | "
              f"p50 {1e3 * lat.get('p50', 0):.2f}ms "
              f"p99 {1e3 * lat.get('p99', 0):.2f}ms | "
              f"{report.energy_per_request_nj:.1f} nJ/req")
        for problem in problems:
            print(f"  BOOKS MISMATCH: {problem}")

    counters = await service.stop()
    if args.require_warm and counters["post_warm_compiles"]:
        failures += 1
        print(f"WARM VIOLATION: {counters['post_warm_compiles']} "
              f"blocks compiled after warm-up")

    summary = {
        "boot_s": round(boot_s, 4),
        "phases": phases,
        "counters": counters,
        "profiles": service.profiles,
    }
    if args.obs:
        tel = obs.get()
        if tel is not None:
            from repro.obs.export import write_export

            paths = write_export(tel.snapshot(), args.out)
            summary["telemetry"] = paths
            print(f"telemetry: {paths['openmetrics']}")
    return summary, failures


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    if not rates:
        print("no rates given", file=sys.stderr)
        return 2

    from repro import obs

    if args.obs:
        obs.enable()
    t0 = time.perf_counter()
    summary, failures = asyncio.run(_run(args, rates))

    from repro.trace.record import bench_record, write_record

    record = bench_record(
        "serve", kind="serve",
        config=(f"workers={args.workers} rates={args.rates} "
                f"requests={args.requests} config={args.config}"),
        wall_s=time.perf_counter() - t0,
        data=summary)
    path = write_record(record, args.out)
    print(f"serve record: {path}")

    if args.stats_json:
        os.makedirs(os.path.dirname(args.stats_json) or ".",
                    exist_ok=True)
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(summary["counters"], fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"stats: {args.stats_json}")

    if failures:
        print(f"FAILED: {failures} errored requests / gate violations",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
