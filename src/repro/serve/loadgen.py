"""Open-loop load generator for the signing service.

Drives a :class:`~repro.serve.service.SigningService` with mixed-curve
traffic at a configured arrival rate.  Arrivals are **open loop**: the
generator fires requests on a Poisson (or uniform) arrival clock and
never waits for a response before the next arrival, so service-side
queueing delay cannot throttle offered load -- exactly the regime
where backpressure and load shedding matter.

The traffic mix is a weighted list of (op, curve) pairs, drawn with a
seeded RNG so a given (seed, request-count, mix) always offers the
same sequence.  Every outcome is accounted (completed / shed /
drained / failed), and :meth:`LoadReport.reconcile` cross-checks the
generator's books against the service's own counters -- the CI smoke
fails if the two ever disagree.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from repro.serve.service import SigningService
from repro.serve.types import (
    RequestShed,
    ServeRequest,
    ServeResponse,
    ServiceDraining,
)
from repro.trace.metrics import Histogram

#: Default traffic mix: (op, curve, weight).
DEFAULT_MIX: tuple[tuple[str, str, float], ...] = (
    ("sign", "P-192", 4.0),
    ("verify", "P-192", 2.0),
    ("sign", "B-163", 2.0),
    ("verify", "B-163", 1.0),
    ("ecdh", "P-192", 0.5),
    ("ecdh", "B-163", 0.5),
)


@dataclass
class LoadConfig:
    """One load-generation run."""

    requests: int = 200
    rate_rps: float = 500.0       # offered arrival rate
    poisson: bool = True          # exponential vs uniform inter-arrival
    seed: int = 1234
    config: str = "baseline"      # pricing config stamped on requests
    mix: tuple = DEFAULT_MIX


@dataclass
class LoadReport:
    """Accounting of one open-loop run against a service."""

    offered: int = 0
    completed: int = 0
    shed: int = 0
    drained: int = 0
    failed: int = 0
    wall_s: float = 0.0
    energy_nj: float = 0.0
    latency: Histogram = field(default_factory=Histogram)
    per_op: dict = field(default_factory=dict)
    baseline: dict = field(default_factory=dict)  # service counters at t0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s else 0.0

    @property
    def energy_per_request_nj(self) -> float:
        return (self.energy_nj / self.completed
                if self.completed else 0.0)

    def reconcile(self, counters: dict) -> list[str]:
        """Mismatches between this report and the service's own
        counters (empty == books balance).

        Compared as deltas against :attr:`baseline`, so traffic the
        service handled before this run does not skew the books.
        """
        def delta(key: str) -> int:
            return counters.get(key, 0) - self.baseline.get(key, 0)

        problems = []
        if self.completed != delta("requests_served"):
            problems.append(
                f"completed {self.completed} != service "
                f"requests_served {delta('requests_served')}")
        if self.shed != delta("requests_shed"):
            problems.append(
                f"shed {self.shed} != service requests_shed "
                f"{delta('requests_shed')}")
        if self.failed != delta("requests_failed"):
            problems.append(
                f"failed {self.failed} != service requests_failed "
                f"{delta('requests_failed')}")
        if self.offered != delta("admitted") + self.shed + self.drained:
            problems.append(
                f"offered {self.offered} != admitted "
                f"{delta('admitted')} + shed {self.shed} "
                f"+ drained {self.drained}")
        return problems

    def to_dict(self) -> dict:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "drained": self.drained,
            "failed": self.failed,
            "shed_rate": round(self.shed_rate, 4),
            "wall_s": round(self.wall_s, 6),
            "throughput_rps": round(self.throughput_rps, 2),
            "energy_per_request_nj": round(
                self.energy_per_request_nj, 3),
            "latency_s": self.latency.summary(),
            "per_op": self.per_op,
        }


def request_sequence(cfg: LoadConfig):
    """The deterministic (request, inter_arrival_s) stream for
    ``cfg`` -- same seed, same offered traffic."""
    rng = random.Random(cfg.seed)
    pairs = [(op, curve) for op, curve, _ in cfg.mix]
    weights = [w for _, _, w in cfg.mix]
    gap = 1.0 / cfg.rate_rps if cfg.rate_rps > 0 else 0.0
    for _ in range(cfg.requests):
        op, curve = rng.choices(pairs, weights=weights)[0]
        wait = (rng.expovariate(cfg.rate_rps)
                if cfg.poisson and cfg.rate_rps > 0 else gap)
        yield ServeRequest(op=op, curve=curve, config=cfg.config), wait


async def run_load(service: SigningService,
                   cfg: LoadConfig | None = None) -> LoadReport:
    """Offer ``cfg`` traffic to a *started* service; returns the
    report once every in-flight request resolved."""
    import time

    cfg = cfg or LoadConfig()
    report = LoadReport(baseline=service.counters())
    pending: list[asyncio.Task] = []

    async def _one(request: ServeRequest) -> tuple[str, object]:
        try:
            response = await service.submit(request)
        except RequestShed:
            return ("shed", request)
        except ServiceDraining:
            return ("drained", request)
        return ("completed" if response.ok else "failed", response)

    t0 = time.perf_counter()
    for request, wait in request_sequence(cfg):
        report.offered += 1
        pending.append(asyncio.ensure_future(_one(request)))
        if wait > 0:
            await asyncio.sleep(wait)
    outcomes = await asyncio.gather(*pending)
    report.wall_s = time.perf_counter() - t0
    for outcome, payload in outcomes:
        key = (payload.request.op if isinstance(payload, ServeResponse)
               else payload.op)
        ledger = report.per_op.setdefault(
            key, {"completed": 0, "shed": 0, "drained": 0, "failed": 0})
        if outcome == "completed":
            report.completed += 1
            ledger["completed"] += 1
            report.energy_nj += payload.energy_nj
            report.latency.observe(payload.latency_s)
        elif outcome == "shed":
            report.shed += 1
            ledger["shed"] += 1
        elif outcome == "drained":
            report.drained += 1
            ledger["drained"] += 1
        else:
            report.failed += 1
            ledger["failed"] += 1
    return report
