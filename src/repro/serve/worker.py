"""Persistent warm worker processes for the signing service.

Each worker is a long-lived process holding exactly the state that
makes steady-state requests cheap:

* the process-wide **assembled-program memo** and **fast-path block
  maps** (:mod:`repro.pete.fastpath`) plus the **lane code cache**
  (:mod:`repro.pete.lanes`) -- discovery and compilation happen once
  per kernel plan, during warm-up, and never again;
* a :class:`~repro.pete.lanes.LanePool` of prepared cores, restocked
  *between* batches so the next batch's prepare cost is off the
  critical path;
* the shared content-addressed sweep cache
  (:class:`~repro.sweep.cache.ResultCache`), which memoizes each
  plan's reference profile (median cycles/energy of a scalar warm run)
  across workers *and* across service restarts;
* per-config :class:`~repro.energy.simulated.RunEnergyParams`, so each
  lane's event counters price into nJ with the request's uarch config.

Protocol (one duplex pipe per worker, parent is the asyncio service):

* ``("init", plans)``   -> warm every plan, reply ``("ready", info)``
* ``("batch", seq, name, k, n, config)`` -> run one lock-step batch,
  reply ``("ok", seq, result)`` or ``("error", seq, message)``
* ``("stop",)``         -> reply ``("bye", telemetry)`` and exit

Every batch result carries the worker's block-compilation delta for
that batch (lane code cache + scalar fast path), and ``warm=True``
once the plan has run before in this process -- the service asserts
that warm batches never compile, which is the "no discovery in steady
state" contract the CI smoke checks via ``RUNTIME_STATS``.
"""

from __future__ import annotations

import os
import time

from repro import obs
from repro.serve.types import check_config

#: Lanes used to warm a plan's code caches at worker start.
WARM_LANES = 2

#: Keys summed into a batch's "blocks compiled" delta.
_LANE_DISCOVERY_KEYS = ("lane_blocks_compiled",)
_FASTPATH_DISCOVERY_KEYS = ("blocks_compiled",)


def _discovery_snapshot() -> dict[str, int]:
    """Current block-compilation counters (lane engine + fast path)."""
    from repro.pete import fastpath, lanes

    snap = {k: lanes.RUNTIME_STATS[k] for k in _LANE_DISCOVERY_KEYS}
    snap.update(
        {k: fastpath.RUNTIME_STATS[k] for k in _FASTPATH_DISCOVERY_KEYS})
    return snap


def _discovery_delta(base: dict[str, int]) -> int:
    now = _discovery_snapshot()
    return sum(now[k] - base.get(k, 0) for k in now)


def _static_block_starts(core, entry: int) -> list[int]:
    """Every reachable basic-block leader pc of ``core``'s program.

    Uses the delay-slot-aware CFG from :mod:`repro.analysis.cfg`; the
    result seeds :meth:`LaneEngine.precompile` /
    :meth:`Fastpath.precompile` so the block maps reach closure during
    warm-up instead of on the first request whose operands take a rare
    path.
    """
    from repro.analysis.cfg import AsmProgram, build_cfg

    program = core.program
    prog = AsmProgram.from_words(list(program.words), base=program.base)
    cfg = build_cfg(prog)
    root = (entry - program.base) // 4
    live = cfg.reachable((root,))
    starts = {b.start for b in cfg.blocks if b.start in live}
    # delay slots too: a demoted lane resumes scalar execution AT the
    # slot, so the fast path discovers blocks starting there
    starts.update(i for i in cfg.slots if i in live)
    return [prog.address(i) for i in sorted(starts)]


class _WorkerState:
    """Everything one worker process keeps warm between batches."""

    def __init__(self, calibration=None, fast: bool = True,
                 stock_target: int = 0,
                 cache_dir: str | None = None) -> None:
        from repro.kernels.runner import KernelRunner
        from repro.pete.lanes import LanePool, require_numpy
        from repro.regress.ledger import NullLedger
        from repro.sweep.cache import ResultCache

        require_numpy()
        if fast:
            os.environ["REPRO_PETE_FAST"] = "1"
        self.runner = KernelRunner(ledger=NullLedger(),
                                   calibration=calibration, fast=fast)
        self.pool = LanePool(self.runner.prepare_lanes,
                             stock_target=stock_target)
        self.cache = ResultCache(cache_dir)
        self._params: dict[str, object] = {}
        self._warm: set[tuple[str, int]] = set()
        self.batches = 0
        self.lanes_run = 0

    # -- pricing ---------------------------------------------------------

    def params_for(self, config: str):
        """Per-config pricing params, built once per config."""
        params = self._params.get(config)
        if params is None:
            from repro.energy.simulated import RunEnergyParams
            from repro.model.configs import get_config

            cfg = get_config(check_config(config))
            icache = cfg.icache
            params = RunEnergyParams(
                cal=self.runner.cal,
                prime_isa_ext=cfg.prime_isa_ext,
                binary_isa_ext=cfg.binary_isa_ext,
                icache_size=icache.size_bytes if icache else None,
                icache_prefetch=bool(icache and icache.prefetch))
            self._params[config] = params
        return params

    def _price_nj(self, stats, config: str) -> float:
        from repro.energy.simulated import report_from_corestats

        return report_from_corestats(stats, self.params_for(config),
                                     label="serve").total_nj

    # -- plan lifecycle --------------------------------------------------

    def plan_key(self, name: str, k: int, config: str) -> str:
        return (f"serve_plan_{name}_{k}_{config}_"
                f"{self.runner.cal.fingerprint()}")

    def warm_plan(self, name: str, k: int,
                  config: str = "baseline") -> dict:
        """Warm one plan to a compile-free steady state and memoize
        its reference profile in the shared cache.

        Two steps: a dynamic warm batch runs the hot path end to end
        (populating predictors and the common block tiling), then a
        *static closure* pass precompiles a block at every reachable
        CFG leader -- in the lane engine's code cache and in the
        scalar fast path's shared block map (the demoted-lane fallback
        runs there).  Dynamic warming alone is not enough: a rarely
        taken carry branch would otherwise compile its fall-through
        the first time a request's operands happen to hit it,
        mid-serve.
        """
        from repro.pete.lanes import LaneEngine

        cores, entry = self.pool.take(name, k, WARM_LANES)
        engine = LaneEngine(cores)
        engine.run(entry)
        starts = _static_block_starts(cores[0], entry)
        engine.precompile(starts)
        # the scalar fast path serves demoted lanes; its per-program
        # shared block map needs the same closure (the Fastpath is
        # created lazily, so force one onto the warm core)
        if cores[0].fastpath is None:
            from repro.pete.fastpath import Fastpath

            cores[0].fastpath = Fastpath(cores[0])
        cores[0].fastpath.precompile(starts)
        stats = engine.lane_stats(0)
        profile = self.cache.memo(
            self.plan_key(name, k, config),
            lambda: {"kernel": name, "k": k, "config": config,
                     "cycles": stats.cycles,
                     "instructions": stats.instructions,
                     "energy_nj": self._price_nj(stats, config)},
            artifact=f"serve:{name}:{k}")
        self._warm.add((name, k))
        self.pool.restock(name, k)
        return profile

    def run_batch(self, name: str, k: int, n: int,
                  config: str = "baseline") -> dict:
        """One lock-step lane batch; per-lane cycles/energy + warm
        accounting."""
        from repro.pete.lanes import LaneEngine

        base = _discovery_snapshot()
        warm = (name, k) in self._warm
        t0 = time.perf_counter()
        cores, entry = self.pool.take(name, k, n)
        prepare_s = time.perf_counter() - t0
        engine = LaneEngine(cores)
        engine.run(entry)
        wall_s = time.perf_counter() - t0
        lanes = []
        for i in range(n):
            stats = engine.lane_stats(i)
            lanes.append({
                "cycles": stats.cycles,
                "instructions": stats.instructions,
                "energy_nj": self._price_nj(stats, config),
            })
        self._warm.add((name, k))
        self.batches += 1
        self.lanes_run += n
        self.pool.restock(name, k)
        return {
            "lanes": lanes,
            "wall_s": wall_s,
            "prepare_s": prepare_s,
            "engine": engine.counters(),
            "pool": self.pool.counters(),
            "compiled": _discovery_delta(base),
            "warm": warm,
        }


def worker_main(conn, index: int, calibration=None, fast: bool = True,
                stock_target: int = 0, cache_dir: str | None = None,
                obs_ctx: dict | None = None) -> None:
    """Entry point of one worker process (runs until ``("stop",)``)."""
    if obs_ctx is not None:
        obs.activate_from(obs_ctx)
    try:
        state = _WorkerState(calibration=calibration, fast=fast,
                             stock_target=stock_target,
                             cache_dir=cache_dir)
    except Exception as exc:
        conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            op = message[0]
            if op == "init":
                _, plans = message
                profiles = {}
                with obs.span("serve.warmup", worker=str(index)):
                    try:
                        for name, k in plans:
                            profiles[f"{name}:{k}"] = state.warm_plan(
                                name, k)
                    except Exception as exc:
                        conn.send(("fatal",
                                   f"{type(exc).__name__}: {exc}"))
                        break
                conn.send(("ready", {"pid": os.getpid(),
                                     "profiles": profiles}))
            elif op == "batch":
                _, seq, name, k, n, config = message
                with obs.span("serve.exec", worker=str(index),
                              kernel=f"{name}:{k}", lanes=str(n)):
                    try:
                        result = state.run_batch(name, k, n, config)
                    except Exception as exc:
                        conn.send(("error", seq,
                                   f"{type(exc).__name__}: {exc}"))
                        continue
                conn.send(("ok", seq, result))
            elif op == "stop":
                conn.send(("bye", {"batches": state.batches,
                                   "lanes": state.lanes_run,
                                   "telemetry": obs.drain()}))
                break
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", -1, f"unknown message {op!r}"))
    finally:
        conn.close()
