"""Admission/backpressure queue for the signing service.

Bounded-depth admission with *typed* load shedding: :meth:`admit`
either enqueues the request or raises -- :class:`RequestShed` when the
configured depth is reached (backpressure engages immediately, the
client never waits on a doomed request), :class:`ServiceDraining` once
:meth:`close` has been called.  Nothing in the queue path blocks.

Entries are grouped by (kernel plan, pricing config) so the
dispatcher can form *homogeneous* micro-batches (one lane-engine
batch runs one program image and prices under one config).  :meth:`next_batch` round-robins over the non-empty plan
groups, optionally lingering ``window_s`` after the first arrival so a
burst coalesces into one batch instead of many singletons; it returns
``None`` only when the queue is closed *and* empty, which is the
dispatcher's signal to exit.

Telemetry (when :mod:`repro.obs` is enabled): a ``serve_queue_depth``
gauge tracked on every transition, ``serve_admitted_total`` /
``serve_shed_total`` counters, and a ``serve_queue_wait_s`` histogram
observed as entries leave the queue.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field

from repro import obs
from repro.serve.types import (
    KernelPlan,
    RequestShed,
    ServeRequest,
    ServiceDraining,
)


@dataclass
class QueueEntry:
    """One admitted request waiting for a batch slot."""

    request: ServeRequest
    plan: KernelPlan
    future: asyncio.Future
    admitted_s: float = field(default_factory=time.perf_counter)

    @property
    def queue_s(self) -> float:
        return time.perf_counter() - self.admitted_s

    @property
    def group(self) -> tuple[KernelPlan, str]:
        """Batching key: one batch shares one program image (the
        plan) *and* one pricing config."""
        return (self.plan, self.request.config)


class AdmissionQueue:
    """Bounded, plan-grouped admission queue with load shedding."""

    def __init__(self, max_depth: int = 256) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.depth = 0
        self.draining = False
        self.admitted = 0
        self.shed = 0
        self._groups: dict[tuple, deque[QueueEntry]] = {}
        self._rr: deque[tuple] = deque()        # round-robin group order
        self._work = asyncio.Event()

    # -- admission (sync, called from the event loop) --------------------

    def admit(self, entry: QueueEntry) -> None:
        """Enqueue ``entry`` or raise a typed rejection."""
        if self.draining:
            raise ServiceDraining(
                "service is draining; request refused")
        if self.depth >= self.max_depth:
            self.shed += 1
            shed = obs.counter("serve_shed_total")
            if shed is not None:
                shed.inc()
            raise RequestShed(
                f"admission queue at depth {self.max_depth}; "
                f"request shed")
        key = entry.group
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = deque()
        if not group:
            self._rr.append(key)
        group.append(entry)
        self.depth += 1
        self.admitted += 1
        tel = obs.get()
        if tel is not None:
            tel.counter("serve_admitted_total",
                        op=entry.request.op,
                        curve=entry.request.curve).inc()
            tel.gauge("serve_queue_depth").set(self.depth)
        self._work.set()

    def close(self) -> None:
        """Refuse new admissions; queued entries still drain."""
        self.draining = True
        self._work.set()      # wake dispatchers so they can observe it

    # -- batch formation (async, one caller per dispatcher) --------------

    async def next_batch(self, max_batch: int,
                         window_s: float = 0.0
                         ) -> list[QueueEntry] | None:
        """Up to ``max_batch`` entries of one plan group, or ``None``
        when the queue is closed and empty."""
        while True:
            if self._rr:
                break
            if self.draining:
                return None
            self._work.clear()
            await self._work.wait()
        if window_s > 0 and not self.draining:
            # linger so a burst coalesces into one batch
            head = self._groups[self._rr[0]]
            if len(head) < max_batch:
                await asyncio.sleep(window_s)
        if not self._rr:          # a rival dispatcher drained the burst
            return await self.next_batch(max_batch, window_s)
        key = self._rr.popleft()
        group = self._groups[key]
        batch = [group.popleft()
                 for _ in range(min(max_batch, len(group)))]
        if group:
            self._rr.append(key)
        self.depth -= len(batch)
        tel = obs.get()
        if tel is not None:
            tel.gauge("serve_queue_depth").set(self.depth)
            wait = tel.histogram("serve_queue_wait_s")
            for entry in batch:
                wait.observe(entry.queue_s)
        return batch

    def flush(self, exc: BaseException) -> int:
        """Fail every queued entry with ``exc``; returns the count."""
        failed = 0
        while self._rr:
            key = self._rr.popleft()
            for entry in self._groups[key]:
                if not entry.future.done():
                    entry.future.set_exception(exc)
                failed += 1
            self._groups[key].clear()
        self.depth = 0
        tel = obs.get()
        if tel is not None:
            tel.gauge("serve_queue_depth").set(0)
        return failed

    def __len__(self) -> int:
        return self.depth
