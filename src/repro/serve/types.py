"""Request/response model and typed errors for the signing service.

A :class:`ServeRequest` names *what* a client wants -- an operation
(``sign`` / ``verify`` / ``ecdh``), a curve and a uarch pricing config
-- and the service maps it onto a :class:`KernelPlan`: the hot field
primitive that dominates that operation on that curve, executed as one
lane of a lock-step micro-batch on the lane engine
(:mod:`repro.pete.lanes`).  Requests that share a plan coalesce into
one batch regardless of their (op, curve) label, which is exactly what
keeps batch occupancy high under a mixed-curve request stream.

The ``config`` field selects the energy-pricing configuration (ISA
extension factors, I-cache static/dynamic energy) the response's
``energy_nj`` is computed with; the simulation itself is the plain
software Pete run the kernel harnesses use.  Only the software configs
are accepted -- accelerator configs (``monte``/``billie``) price
coprocessor activity this service does not simulate, and naming one
raises :class:`UnsupportedConfig` at admission rather than returning a
misleading number.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


class ServeError(Exception):
    """Base class for typed service-plane rejections."""


class ServiceDraining(ServeError):
    """The service is shutting down; new admissions are refused while
    in-flight requests drain."""


class RequestShed(ServeError):
    """The admission queue was at its configured depth; the request was
    load-shed (a typed rejection, never a timeout)."""


class UnknownOperation(ServeError):
    """The request named an (op, curve) pair with no kernel plan."""


class UnsupportedConfig(ServeError):
    """The request named a uarch config the service cannot price."""


class WorkerFailure(ServeError):
    """A worker process died or errored while holding the request."""


#: Operations the service multiplexes.
OPERATIONS = ("sign", "verify", "ecdh")

#: Curves with kernel plans (one prime-field, one binary-field).
CURVES = ("P-192", "B-163")

#: Software pricing configs (:mod:`repro.model.configs` names).
SOFTWARE_CONFIGS = ("baseline", "isa_ext", "isa_ext_ic", "binary_isa")


@dataclass(frozen=True)
class KernelPlan:
    """The representative hot kernel one request class executes."""

    kernel: str
    k: int

    @property
    def label(self) -> str:
        return f"{self.kernel}:{self.k}"


#: (op, curve) -> the dominating field primitive.  Sign is dominated by
#: the composed field multiply (mul + reduction in one image), verify by
#: the bare multi-precision multiply (the double-scalar recombination is
#: multiply-bound), and ecdh by the scalar-loop ladder skeleton.
PLANS: dict[tuple[str, str], KernelPlan] = {
    ("sign", "P-192"): KernelPlan("fmul_p192", 6),
    ("verify", "P-192"): KernelPlan("os_mul", 6),
    ("ecdh", "P-192"): KernelPlan("scalar_ladder", 16),
    ("sign", "B-163"): KernelPlan("fmul_b163", 6),
    ("verify", "B-163"): KernelPlan("comb_mul", 6),
    ("ecdh", "B-163"): KernelPlan("scalar_ladder", 16),
}

_REQUEST_IDS = itertools.count(1)


def plan_for(op: str, curve: str) -> KernelPlan:
    """The kernel plan for one (op, curve); raises typed errors."""
    plan = PLANS.get((op, curve))
    if plan is None:
        raise UnknownOperation(
            f"no kernel plan for op={op!r} curve={curve!r} "
            f"(ops: {', '.join(OPERATIONS)}; curves: {', '.join(CURVES)})")
    return plan


def check_config(config: str) -> str:
    """Validate a pricing config name; returns it unchanged."""
    if config not in SOFTWARE_CONFIGS:
        raise UnsupportedConfig(
            f"config {config!r} is not a software pricing config "
            f"(one of {', '.join(SOFTWARE_CONFIGS)})")
    return config


@dataclass(frozen=True)
class ServeRequest:
    """One client request: an operation on a curve, priced as a config.

    ``request_id`` is assigned automatically (process-unique) unless
    the caller provides one; it round-trips into the response so an
    open-loop load generator can reconcile its accounting with the
    service's counters.
    """

    op: str
    curve: str = "P-192"
    config: str = "baseline"
    request_id: int = field(
        default_factory=lambda: next(_REQUEST_IDS))

    @property
    def plan(self) -> KernelPlan:
        return plan_for(self.op, self.curve)

    def validate(self) -> "ServeRequest":
        """Raise the typed admission error for a malformed request."""
        plan_for(self.op, self.curve)
        check_config(self.config)
        return self


@dataclass
class ServeResponse:
    """What the service returns for one admitted request.

    ``cycles``/``instructions`` are the request's own lane of the
    micro-batch it rode (distinct operands per lane, so branchy kernels
    legitimately differ across lanes of one batch); ``energy_nj``
    prices that lane's event counters with the request's config.
    ``queue_s`` is time spent in the admission queue, ``service_s`` the
    batch's host wall-clock, and ``batch_size`` the occupancy of the
    dispatched batch.
    """

    request: ServeRequest
    status: str                  # "ok" | "failed"
    kernel: str = ""
    k: int = 0
    cycles: int = 0
    instructions: int = 0
    energy_nj: float = 0.0
    queue_s: float = 0.0
    service_s: float = 0.0
    latency_s: float = 0.0
    batch_size: int = 0
    worker: int = -1             # worker index that ran the batch
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"
