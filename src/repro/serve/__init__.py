"""The always-on signing service plane.

A long-lived asyncio front-end (:class:`SigningService`) over
persistent warm worker processes: requests for ``sign`` / ``verify`` /
``ecdh`` across curves are admitted into a bounded backpressure queue,
coalesced into homogeneous micro-batches, and executed lock-step on
the lane engine by workers that hold pre-discovered fast-path block
maps -- steady-state requests never pay discovery or compilation.

See ``ARCHITECTURE.md`` (service plane) for the queueing model and
worker warm-state lifecycle, and :mod:`repro.serve.loadgen` for the
open-loop benchmark harness behind ``benchmarks/bench_serve.py``.
"""

from repro.serve.loadgen import (
    DEFAULT_MIX,
    LoadConfig,
    LoadReport,
    run_load,
)
from repro.serve.queue import AdmissionQueue, QueueEntry
from repro.serve.service import (
    RUNTIME_STATS,
    ServeConfig,
    SigningService,
    runtime_stats_snapshot,
    serve,
)
from repro.serve.types import (
    CURVES,
    OPERATIONS,
    PLANS,
    KernelPlan,
    RequestShed,
    ServeError,
    ServeRequest,
    ServeResponse,
    ServiceDraining,
    UnknownOperation,
    UnsupportedConfig,
    WorkerFailure,
    plan_for,
)

__all__ = [
    "AdmissionQueue",
    "CURVES",
    "DEFAULT_MIX",
    "KernelPlan",
    "LoadConfig",
    "LoadReport",
    "OPERATIONS",
    "PLANS",
    "QueueEntry",
    "RequestShed",
    "RUNTIME_STATS",
    "ServeConfig",
    "ServeError",
    "ServeRequest",
    "ServeResponse",
    "ServiceDraining",
    "SigningService",
    "UnknownOperation",
    "UnsupportedConfig",
    "WorkerFailure",
    "plan_for",
    "run_load",
    "runtime_stats_snapshot",
    "serve",
]
