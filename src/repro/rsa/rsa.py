"""Minimal RSA over the modular-exponentiation layer.

Just enough of RSA to price its energy against ECC: deterministic key
generation (Miller-Rabin primes from a seeded stream), raw sign/verify
with the textbook trapdoor, and the CRT speedup real implementations use
(two half-size exponentiations instead of one full-size one).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.fields.inversion import egcd_inverse
from repro.rsa.modexp import modexp

#: The universal public exponent.
PUBLIC_EXPONENT = 65537

_SMALL_PRIMES = (3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
                 59, 61, 67, 71, 73, 79, 83, 89, 97)


def _miller_rabin(n: int, rounds: int, seed_material: bytes) -> bool:
    """Deterministic-witness Miller-Rabin (witnesses from a seeded hash)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for i in range(rounds):
        material = hashlib.sha256(seed_material + i.to_bytes(4, "big")
                                  ).digest()
        a = 2 + int.from_bytes(material, "big") % (n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, seed: bytes) -> int:
    counter = 0
    while True:
        material = b""
        while len(material) * 8 < bits:
            material += hashlib.sha512(
                seed + counter.to_bytes(4, "big")
                + len(material).to_bytes(4, "big")).digest()
        candidate = int.from_bytes(material, "big") >> (
            len(material) * 8 - bits)
        candidate |= (1 << (bits - 1)) | 1  # full size, odd
        if candidate % PUBLIC_EXPONENT != 1 and \
                _miller_rabin(candidate, 24, seed + candidate.to_bytes(
                    (bits + 7) // 8, "big")):
            return candidate
        counter += 1


@dataclass(frozen=True)
class RsaKeyPair:
    """An RSA key with the CRT components."""

    n: int
    e: int
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()


def generate_rsa_keypair(bits: int = 1024,
                         seed: bytes = b"repro-rsa") -> RsaKeyPair:
    """Deterministic RSA keypair of ``bits`` modulus size."""
    half = bits // 2
    p = _generate_prime(half, seed + b"|p")
    q = _generate_prime(half, seed + b"|q")
    if p == q:  # pragma: no cover - astronomically unlikely
        q = _generate_prime(half, seed + b"|q2")
    n = p * q
    phi = (p - 1) * (q - 1)
    d = egcd_inverse(PUBLIC_EXPONENT, phi)
    return RsaKeyPair(
        n=n, e=PUBLIC_EXPONENT, d=d, p=p, q=q,
        d_p=d % (p - 1), d_q=d % (q - 1),
        q_inv=egcd_inverse(q, p),
    )


def rsa_sign_raw(key: RsaKeyPair, message: int, use_crt: bool = True,
                 window: int = 4) -> int:
    """The private operation m^d mod n, with the CRT speedup by default
    (two half-size exponentiations -- the trick that makes RSA signing
    only ~4x slower per bit rather than ~8x)."""
    if not 0 <= message < key.n:
        raise ValueError("message representative out of range")
    if not use_crt:
        return modexp(message, key.d, key.n, window=window)
    s_p = modexp(message % key.p, key.d_p, key.p, window=window)
    s_q = modexp(message % key.q, key.d_q, key.q, window=window)
    h = (key.q_inv * (s_p - s_q)) % key.p
    return s_q + h * key.q


def rsa_verify_raw(key: RsaKeyPair, signature: int) -> int:
    """The public operation s^e mod n (cheap: e = 65537 is 17 muls)."""
    if not 0 <= signature < key.n:
        raise ValueError("signature out of range")
    return modexp(signature, key.e, key.n)
