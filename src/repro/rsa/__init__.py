"""Modular-exponentiation cryptography (paper Section 2.1.3).

The paper motivates ECC by the cost of the alternative: RSA-style
cryptosystems whose one-way function is modular exponentiation, needing
1024-15360-bit integers for security ECC achieves at 160-521 bits.  This
subpackage implements that alternative -- square-and-multiply and
windowed modular exponentiation over the CIOS Montgomery layer, plus a
minimal RSA with CRT -- so the energy comparison behind the paper's
"ECC is the only asymmetric cryptosystem evaluated" decision (and the
related-work claims of Wander et al.) can be reproduced rather than
asserted.
"""

from repro.rsa.modexp import ModExpCounts, modexp, modexp_counts
from repro.rsa.rsa import RsaKeyPair, generate_rsa_keypair, rsa_sign_raw, \
    rsa_verify_raw

__all__ = [
    "modexp",
    "modexp_counts",
    "ModExpCounts",
    "RsaKeyPair",
    "generate_rsa_keypair",
    "rsa_sign_raw",
    "rsa_verify_raw",
]
