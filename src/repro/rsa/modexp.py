"""Modular exponentiation over the Montgomery layer (Section 2.1.3).

The paper's estimate -- "on the order of 1.5 * 4096 field multiplications
... for each modular exponentiation" of 4096-bit RSA -- is the
square-and-multiply operation count this module realizes and measures.
A fixed-window variant (the practical choice) is included; both run on
the same CIOS Montgomery machinery Monte's microcode implements, so the
cycle model can price them on any of the paper's configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mp.montgomery import MontgomeryContext


@dataclass(frozen=True)
class ModExpCounts:
    """Montgomery-multiplication counts of one exponentiation."""

    squarings: int
    multiplications: int
    conversions: int = 2  # into and out of the Montgomery domain

    @property
    def total_montmuls(self) -> int:
        return self.squarings + self.multiplications + self.conversions


def modexp_counts(exponent: int, window: int = 1) -> ModExpCounts:
    """Operation counts without computing anything.

    ``window=1`` is binary square-and-multiply: bits-1 squarings plus
    one multiplication per set bit (~1.5 muls/bit on average, the
    paper's rule of thumb).  ``window>1`` precomputes 2^(w-1) odd powers
    and scans w bits at a time.
    """
    bits = exponent.bit_length()
    if window == 1:
        return ModExpCounts(squarings=bits - 1,
                            multiplications=bin(exponent).count("1") - 1)
    precompute = (1 << (window - 1))
    windows = -(-bits // window)
    return ModExpCounts(
        squarings=bits - 1,
        multiplications=precompute + windows,
    )


def modexp(base: int, exponent: int, modulus: int,
           ctx: MontgomeryContext | None = None,
           window: int = 1) -> int:
    """base^exponent mod modulus via Montgomery multiplication.

    With ``window > 1`` uses fixed-window (2^w-ary) exponentiation.
    """
    if modulus <= 1 or modulus % 2 == 0:
        raise ValueError("modulus must be an odd integer > 1")
    if exponent < 0:
        raise ValueError("negative exponents unsupported")
    if exponent == 0:
        return 1 % modulus
    ctx = ctx or MontgomeryContext(modulus)
    base_m = ctx.to_mont(base % modulus)
    if window == 1:
        acc = base_m
        for bit in bin(exponent)[3:]:
            acc = ctx.mul(acc, acc)
            if bit == "1":
                acc = ctx.mul(acc, base_m)
        return ctx.from_mont(acc)
    # fixed-window: precompute odd powers base^(2i+1)
    table = {1: base_m}
    base_sq = ctx.mul(base_m, base_m)
    power = base_m
    for i in range(3, 1 << window, 2):
        power = ctx.mul(power, base_sq)
        table[i] = power
    digits = []
    e = exponent
    while e:
        digits.append(e & ((1 << window) - 1))
        e >>= window
    acc = None
    for digit in reversed(digits):
        if acc is not None:
            for _ in range(window):
                acc = ctx.mul(acc, acc)
        if digit:
            # split digit into odd part * 2^shift
            shift = (digit & -digit).bit_length() - 1
            odd = digit >> shift
            term = table[odd]
            for _ in range(shift):
                term = ctx.mul(term, term)
            acc = term if acc is None else ctx.mul(acc, term)
    assert acc is not None
    return ctx.from_mont(acc)
