"""Operation counters attached to field instances.

The whole-system cycle model (Section 5 of DESIGN.md) needs exact counts of
field operations performed by a cryptographic operation.  Every field object
owns an :class:`OpCounter`; field methods bump the relevant category.  The
counter can be reset, snapshotted and diffed, so callers can attribute
operation counts to phases (e.g. "scalar multiplication" vs "arithmetic
modulo the group order").
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping


class OpCounter:
    """Counts named events (``fmul``, ``fsqr``, ``fadd``, ...)."""

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()
        self.enabled = True

    def count(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self._counts[name] += n

    def reset(self) -> None:
        self._counts.clear()

    def snapshot(self) -> dict[str, int]:
        """Return a copy of the current counts."""
        return dict(self._counts)

    def diff(self, earlier: Mapping[str, int]) -> dict[str, int]:
        """Return counts accumulated since ``earlier`` (a snapshot)."""
        return {
            key: self._counts[key] - earlier.get(key, 0)
            for key in set(self._counts) | set(earlier)
            if self._counts[key] - earlier.get(key, 0)
        }

    def __getitem__(self, name: str) -> int:
        return self._counts[name]

    def total(self) -> int:
        return sum(self._counts.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"OpCounter({inner})"
