"""Field inversion algorithms (paper Section 4.2.4).

The paper uses two inversion strategies:

* the **extended Euclidean algorithm** (binary variant for integers,
  polynomial variant for GF(2^m)) -- O(k^2), used in software on Pete for
  every configuration's group-order arithmetic and for field inversion on
  the non-accelerated configurations;
* **Fermat's little theorem** -- an inversion by exponentiation, O(k^3) but
  expressible purely with multiplications/squarings, used on the Monte and
  Billie accelerators where only mul/add map to hardware.

Both are implemented here for both field families, together with Itoh-Tsujii
addition-chain inversion for binary fields (the standard way to realize the
Fermat inversion with ~log2(m) multiplications, which is what an accelerator
driver would issue).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Integers modulo p
# ---------------------------------------------------------------------------


def egcd_inverse(a: int, p: int) -> int:
    """Modular inverse via the extended Euclidean algorithm."""
    if a % p == 0:
        raise ZeroDivisionError("inverse of zero")
    old_r, r = a % p, p
    old_s, s = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    if old_r != 1:
        raise ValueError(f"{a} is not invertible modulo {p}")
    return old_s % p


def binary_euclid_inverse(a: int, p: int) -> int:
    """Binary (shift-and-subtract) extended Euclidean inversion.

    This is the division-free variant actually used on Pete (divides are
    expensive on the multi-cycle divider); it needs only shifts, adds and
    subtracts, matching the paper's description.
    """
    if a % p == 0:
        raise ZeroDivisionError("inverse of zero")
    u, v = a % p, p
    x1, x2 = 1, 0
    while u != 1 and v != 1:
        while u % 2 == 0:
            u //= 2
            x1 = x1 // 2 if x1 % 2 == 0 else (x1 + p) // 2
        while v % 2 == 0:
            v //= 2
            x2 = x2 // 2 if x2 % 2 == 0 else (x2 + p) // 2
        if u >= v:
            u, x1 = u - v, x1 - x2
        else:
            v, x2 = v - u, x2 - x1
    return x1 % p if u == 1 else x2 % p


def fermat_inverse(a: int, p: int) -> int:
    """Inversion via Fermat's little theorem: a^(p-2) mod p."""
    if a % p == 0:
        raise ZeroDivisionError("inverse of zero")
    return pow(a, p - 2, p)


def fermat_prime_opcounts(p: int) -> tuple[int, int]:
    """(squarings, multiplications) of a square-and-multiply Fermat
    inversion for exponent p-2, as issued to the Monte accelerator."""
    e = p - 2
    sqr = e.bit_length() - 1
    mul = bin(e).count("1") - 1
    return sqr, mul


# ---------------------------------------------------------------------------
# Binary polynomials modulo f(x)
# ---------------------------------------------------------------------------


def _pdeg(a: int) -> int:
    return a.bit_length() - 1


def poly_euclid_inverse(a: int, f: int) -> int:
    """Extended Euclidean inversion in GF(2)[x] / f(x)."""
    if a == 0:
        raise ZeroDivisionError("inverse of zero")
    u, v = a, f
    g1, g2 = 1, 0
    while u != 1:
        j = _pdeg(u) - _pdeg(v)
        if j < 0:
            u, v = v, u
            g1, g2 = g2, g1
            j = -j
        u ^= v << j
        g1 ^= g2 << j
        if u == 0:
            raise ValueError("polynomial not invertible")
    return g1


def itoh_tsujii_chain(m: int) -> list[tuple[int, int]]:
    """Addition chain for the Itoh-Tsujii inversion exponent in GF(2^m).

    Returns steps ``(i, j)`` meaning: beta_{i+j} = beta_i^(2^j) * beta_j
    where beta_k = a^(2^k - 1).  The inverse is beta_{m-1}^2.  The chain is
    built from the binary expansion of m-1 (the textbook construction), so
    it uses floor(log2(m-1)) + weight(m-1) - 1 multiplications.
    """
    target = m - 1
    bits = bin(target)[2:]
    chain: list[tuple[int, int]] = []
    have = 1
    for b in bits[1:]:
        chain.append((have, have))
        have *= 2
        if b == "1":
            chain.append((have, 1))
            have += 1
    assert have == target
    return chain


def itoh_tsujii_inverse(a: int, m: int, reduce_fn) -> int:
    """Itoh-Tsujii inversion in GF(2^m): a^(2^m - 2).

    ``reduce_fn`` reduces a polynomial product modulo the field polynomial.
    Counts: len(chain) multiplications plus m-1 squarings total.
    """
    if a == 0:
        raise ZeroDivisionError("inverse of zero")

    def fsqr(x: int) -> int:
        return reduce_fn(_poly_sqr(x))

    def fmul(x: int, y: int) -> int:
        return reduce_fn(_poly_mul(x, y))

    betas = {1: a}
    for i, j in itoh_tsujii_chain(m):
        b = betas[i]
        for _ in range(j):
            b = fsqr(b)
        betas[i + j] = fmul(b, betas[j])
    return fsqr(betas[m - 1])


def itoh_tsujii_opcounts(m: int) -> tuple[int, int]:
    """(squarings, multiplications) of an Itoh-Tsujii inversion in GF(2^m),
    as issued to the Billie accelerator."""
    chain = itoh_tsujii_chain(m)
    sqr = sum(j for _, j in chain) + 1
    return sqr, len(chain)


def batch_inverse(field, values: list[int]) -> list[int]:
    """Montgomery's simultaneous-inversion trick: n inverses for the
    price of one inversion plus 3(n-1) multiplications.

    Used by the scalar-multiplication precomputation so that converting
    the table points to affine costs a single field inversion (this is
    what keeps inversion counts at two per ECDSA primitive).
    """
    if not values:
        return []
    prefix = [values[0]]
    for v in values[1:]:
        prefix.append(field.mul(prefix[-1], v))
    inv_all = field.inv(prefix[-1])
    out = [0] * len(values)
    for i in range(len(values) - 1, 0, -1):
        out[i] = field.mul(inv_all, prefix[i - 1])
        inv_all = field.mul(inv_all, values[i])
    out[0] = inv_all
    return out


def _poly_mul(a: int, b: int) -> int:
    """Carry-less (polynomial) multiplication of two GF(2)[x] elements."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def _poly_sqr(a: int) -> int:
    """Polynomial squaring: interleave zero bits (paper Section 4.2.3)."""
    result = 0
    i = 0
    while a:
        if a & 1:
            result |= 1 << (2 * i)
        a >>= 1
        i += 1
    return result
