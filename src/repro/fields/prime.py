"""Prime fields GF(p) with NIST fast reduction.

A :class:`PrimeField` performs mathematically exact field arithmetic on
Python ints while counting operations through its
:class:`~repro.fields.counters.OpCounter`.  The reduction path mirrors the
paper's software suite: products are reduced with the per-prime NIST fast
reduction routine when one exists, otherwise with a plain modulo.

Word-level (limb) implementations of the same multiplication and reduction
algorithms -- the ones whose cycle costs the Pete simulator measures -- live
in :mod:`repro.mp` and are cross-validated against this class.
"""

from __future__ import annotations

from repro.fields.counters import OpCounter
from repro.fields.inversion import (
    binary_euclid_inverse,
    fermat_inverse,
)
from repro.fields.nist import NIST_PRIMES, PRIME_REDUCERS


class PrimeField:
    """GF(p) arithmetic with operation counting.

    Parameters
    ----------
    p:
        The field prime.
    name:
        Human-readable name (``"P-192"`` for NIST fields).
    """

    _nist_cache: dict[int, "PrimeField"] = {}

    def __init__(self, p: int, name: str | None = None) -> None:
        if p < 3 or p % 2 == 0:
            raise ValueError("p must be an odd prime >= 3")
        self.p = p
        self.bits = p.bit_length()
        self.name = name or f"GF({p})"
        self.counter = OpCounter()
        self._reduce = PRIME_REDUCERS.get(self.bits)
        if self._reduce is not None and NIST_PRIMES.get(self.bits) != p:
            self._reduce = None

    # -- construction -----------------------------------------------------

    @classmethod
    def nist(cls, bits: int) -> "PrimeField":
        """Shared instance for the NIST prime of the given size."""
        if bits not in NIST_PRIMES:
            raise KeyError(f"no NIST prime of {bits} bits")
        if bits not in cls._nist_cache:
            cls._nist_cache[bits] = cls(NIST_PRIMES[bits], name=f"P-{bits}")
        return cls._nist_cache[bits]

    # -- helpers -----------------------------------------------------------

    def words(self, word_bits: int = 32) -> int:
        """k = ceil(n / w): limbs needed to store a field element."""
        return -(-self.bits // word_bits)

    def element(self, value: int) -> int:
        """Canonicalize an integer into [0, p)."""
        return value % self.p

    def contains(self, value: int) -> bool:
        return 0 <= value < self.p

    def reduce_product(self, c: int) -> int:
        """Reduce a double-length product (NIST fast reduction if known)."""
        if self._reduce is not None:
            return self._reduce(c)
        return c % self.p

    # -- arithmetic ---------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        self.counter.count("fadd")
        t = a + b
        if t >= self.p:
            t -= self.p
        return t

    def sub(self, a: int, b: int) -> int:
        self.counter.count("fsub")
        t = a - b
        if t < 0:
            t += self.p
        return t

    def neg(self, a: int) -> int:
        self.counter.count("fsub")
        return (-a) % self.p

    def mul(self, a: int, b: int) -> int:
        self.counter.count("fmul")
        return self.reduce_product(a * b)

    def sqr(self, a: int) -> int:
        self.counter.count("fsqr")
        return self.reduce_product(a * a)

    def inv(self, a: int, method: str = "euclid") -> int:
        """Field inversion.

        ``method`` selects the paper's software path (``"euclid"``, the
        binary extended Euclidean algorithm) or the accelerator path
        (``"fermat"``).
        """
        self.counter.count("finv")
        if method == "euclid":
            return binary_euclid_inverse(a, self.p)
        if method == "fermat":
            return fermat_inverse(a, self.p)
        raise ValueError(f"unknown inversion method {method!r}")

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    # -- misc ----------------------------------------------------------------

    def half(self, a: int) -> int:
        """a/2 mod p via the shift trick (used by some EC formulas)."""
        if a % 2 == 0:
            return a // 2
        return (a + self.p) // 2

    def __repr__(self) -> str:  # pragma: no cover
        return f"PrimeField({self.name}, {self.bits} bits)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))
