"""Binary fields GF(2^m) with NIST fast reduction.

Elements are Python ints interpreted as GF(2)[x] polynomials (bit i is the
coefficient of x^i).  Addition is XOR ("carry-less arithmetic", paper
Section 2.1.4); multiplication is polynomial multiplication followed by
reduction modulo the NIST trinomial/pentanomial; squaring is the linear
bit-interleave operation (Section 4.2.3).
"""

from __future__ import annotations

from repro.fields.counters import OpCounter
from repro.fields.inversion import (
    _poly_mul,
    _poly_sqr,
    itoh_tsujii_inverse,
    poly_euclid_inverse,
)
from repro.fields.nist import NIST_BINARY_POLYS, reduce_binary


class BinaryField:
    """GF(2^m) arithmetic with operation counting.

    Parameters
    ----------
    poly:
        The irreducible reduction polynomial f(x), encoded as an int with
        bit i set for each term x^i.  Degree m = poly.bit_length() - 1.
    name:
        Human-readable name (``"B-163"`` for NIST fields).
    """

    _nist_cache: dict[int, "BinaryField"] = {}

    def __init__(self, poly: int, name: str | None = None) -> None:
        if poly < 2:
            raise ValueError("reduction polynomial must have degree >= 1")
        self.poly = poly
        self.m = poly.bit_length() - 1
        self.bits = self.m
        self.name = name or f"GF(2^{self.m})"
        self.counter = OpCounter()
        self._nist_m = self.m if NIST_BINARY_POLYS.get(self.m) == poly else None

    # -- construction -----------------------------------------------------

    @classmethod
    def nist(cls, m: int) -> "BinaryField":
        """Shared instance for the NIST binary field of degree m."""
        if m not in NIST_BINARY_POLYS:
            raise KeyError(f"no NIST binary field of degree {m}")
        if m not in cls._nist_cache:
            cls._nist_cache[m] = cls(NIST_BINARY_POLYS[m], name=f"B-{m}")
        return cls._nist_cache[m]

    # -- helpers -----------------------------------------------------------

    def words(self, word_bits: int = 32) -> int:
        return -(-self.m // word_bits)

    def element(self, value: int) -> int:
        return self.reduce(value)

    def contains(self, value: int) -> bool:
        return 0 <= value < (1 << self.m)

    def reduce(self, c: int) -> int:
        """Reduce a polynomial modulo f(x) (fast path for NIST fields)."""
        if self._nist_m is not None:
            return reduce_binary(c, self._nist_m)
        return self._generic_reduce(c)

    def _generic_reduce(self, c: int) -> int:
        deg_f = self.m
        while c.bit_length() - 1 >= deg_f:
            c ^= self.poly << (c.bit_length() - 1 - deg_f)
        return c

    # -- arithmetic ---------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        self.counter.count("fadd")
        return a ^ b

    # In GF(2^m) subtraction *is* addition (additive inverse is identity).
    sub = add

    def neg(self, a: int) -> int:
        return a

    def mul(self, a: int, b: int) -> int:
        self.counter.count("fmul")
        return self.reduce(_poly_mul(a, b))

    def sqr(self, a: int) -> int:
        self.counter.count("fsqr")
        return self.reduce(_poly_sqr(a))

    def inv(self, a: int, method: str = "euclid") -> int:
        """Field inversion: ``"euclid"`` (software path on Pete) or
        ``"itoh-tsujii"`` (the Fermat path issued to Billie)."""
        self.counter.count("finv")
        if method == "euclid":
            return poly_euclid_inverse(a, self.poly)
        if method in ("itoh-tsujii", "fermat"):
            return itoh_tsujii_inverse(a, self.m, self.reduce)
        raise ValueError(f"unknown inversion method {method!r}")

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def trace(self, a: int) -> int:
        """Field trace Tr(a) = sum of a^(2^i); used to solve quadratics
        (needed e.g. for point decompression / curve sanity checks)."""
        t = a
        x = a
        for _ in range(self.m - 1):
            x = self.sqr(x)
            t ^= x
        assert t in (0, 1)
        return t

    def half_trace(self, a: int) -> int:
        """Half-trace: solves z^2 + z = a when m is odd and Tr(a)=0."""
        if self.m % 2 == 0:
            raise ValueError("half-trace requires odd m")
        z = a
        for _ in range((self.m - 1) // 2):
            z = self.sqr(self.sqr(z))
            z ^= a
        return z

    def __repr__(self) -> str:  # pragma: no cover
        return f"BinaryField({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BinaryField) and other.poly == self.poly

    def __hash__(self) -> int:
        return hash(("BinaryField", self.poly))
