"""Finite fields for asymmetric cryptography.

Two field families, matching the paper's Section 2.1:

* :class:`~repro.fields.prime.PrimeField` -- GF(p) with the five NIST
  generalized-Mersenne primes and their fast-reduction routines.
* :class:`~repro.fields.binary.BinaryField` -- GF(2^m) with the five NIST
  trinomials/pentanomials and their fast-reduction routines.

Both field classes expose the same operation vocabulary (``add``, ``sub``,
``mul``, ``sqr``, ``inv``, ``div``, ``neg``) and both carry an
:class:`~repro.fields.counters.OpCounter` so that higher layers can count
field operations for the cycle/energy models.
"""

from repro.fields.binary import BinaryField
from repro.fields.counters import OpCounter
from repro.fields.nist import (
    NIST_BINARY_POLYS,
    NIST_PRIMES,
    binary_field,
    prime_field,
)
from repro.fields.prime import PrimeField

__all__ = [
    "PrimeField",
    "BinaryField",
    "OpCounter",
    "NIST_PRIMES",
    "NIST_BINARY_POLYS",
    "prime_field",
    "binary_field",
]
