"""NIST field constants and fast-reduction routines.

The paper evaluates five prime fields (Eq. 4.3-4.7) and five binary fields
(Eq. 4.8-4.12), all standardized by NIST in FIPS 186.  The primes are
generalized-Mersenne numbers whose terms fall on 32-bit word boundaries
(except P-521, which is a pure Mersenne number), enabling reduction by a
handful of word-aligned folds.  The binary reduction polynomials are
trinomials/pentanomials whose fast reduction folds the high words back with
a few shifted XORs (Algorithm 7 for B-163).

This module provides the constants plus *integer-level* fast reduction
(operating on Python ints).  Word-level (limb-array) implementations of the
same algorithms live in :mod:`repro.mp.reduce` and are validated against
these.
"""

from __future__ import annotations

from typing import Callable

# ---------------------------------------------------------------------------
# Prime fields: p as sums of powers of two (Eq. 4.3 - 4.7 of the paper).
# ---------------------------------------------------------------------------

P192 = 2**192 - 2**64 - 1
P224 = 2**224 - 2**96 + 1
P256 = 2**256 - 2**224 + 2**192 + 2**96 - 1
P384 = 2**384 - 2**128 - 2**96 + 2**32 - 1
P521 = 2**521 - 1

NIST_PRIMES: dict[int, int] = {
    192: P192,
    224: P224,
    256: P256,
    384: P384,
    521: P521,
}

#: Number of "fold" terms in each generalized-Mersenne prime; the cost of
#: fast reduction grows with this count (used by the cycle model).
PRIME_FOLD_TERMS: dict[int, int] = {192: 3, 224: 2, 256: 4, 384: 4, 521: 1}


def _mask_words(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def reduce_p192(c: int) -> int:
    """NIST fast reduction modulo P-192 (Algorithm 4 of the paper).

    Folds the upper three 64-bit limbs of a <=384-bit product back into the
    lower 192 bits using 2^192 == 2^64 + 1 (mod p).
    """
    mask64 = (1 << 64) - 1
    c0 = c & ((1 << 192) - 1)
    c3 = (c >> 192) & mask64
    c4 = (c >> 256) & mask64
    c5 = (c >> 320) & mask64
    s1 = c0
    s2 = (c3 << 64) | c3
    s3 = (c4 << 128) | (c4 << 64)
    s4 = (c5 << 128) | (c5 << 64) | c5
    t = s1 + s2 + s3 + s4
    while t >= P192:
        t -= P192
    return t


def reduce_p224(c: int) -> int:
    """NIST fast reduction modulo P-224 (32-bit limb folding)."""
    mask32 = (1 << 32) - 1
    limbs = [(c >> (32 * i)) & mask32 for i in range(14)]
    s1 = sum(limbs[i] << (32 * i) for i in range(7))
    s2 = (limbs[7] << 96) | (limbs[8] << 128) | (limbs[9] << 160) | (
        limbs[10] << 192
    )
    s3 = (limbs[11] << 96) | (limbs[12] << 128) | (limbs[13] << 160)
    s4 = sum(limbs[7 + i] << (32 * i) for i in range(7))
    s5 = (limbs[11] << 0) | (limbs[12] << 32) | (limbs[13] << 64)
    t = s1 + s2 + s3 - s4 - s5
    while t < 0:
        t += P224
    while t >= P224:
        t -= P224
    return t


def reduce_p256(c: int) -> int:
    """NIST fast reduction modulo P-256 (FIPS 186-4, D.2.3)."""
    mask32 = (1 << 32) - 1
    a = [(c >> (32 * i)) & mask32 for i in range(16)]

    def words(*idx: int) -> int:
        return sum(a[j] << (32 * i) for i, j in enumerate(idx) if j >= 0)

    s1 = words(0, 1, 2, 3, 4, 5, 6, 7)
    s2 = words(-1, -1, -1, 11, 12, 13, 14, 15)
    s3 = words(-1, -1, -1, 12, 13, 14, 15, -1)
    s4 = words(8, 9, 10, -1, -1, -1, 14, 15)
    s5 = words(9, 10, 11, 13, 14, 15, 13, 8)
    s6 = words(11, 12, 13, -1, -1, -1, 8, 10)
    s7 = words(12, 13, 14, 15, -1, -1, 9, 11)
    s8 = words(13, 14, 15, 8, 9, 10, -1, 12)
    s9 = words(14, 15, -1, 9, 10, 11, -1, 13)
    t = s1 + 2 * s2 + 2 * s3 + s4 + s5 - s6 - s7 - s8 - s9
    while t < 0:
        t += P256
    while t >= P256:
        t -= P256
    return t


def reduce_p384(c: int) -> int:
    """NIST fast reduction modulo P-384 (FIPS 186-4, D.2.4)."""
    mask32 = (1 << 32) - 1
    a = [(c >> (32 * i)) & mask32 for i in range(24)]

    def words(*idx: int) -> int:
        return sum(a[j] << (32 * i) for i, j in enumerate(idx) if j >= 0)

    s1 = words(*range(12))
    s2 = words(-1, -1, -1, -1, 21, 22, 23, -1, -1, -1, -1, -1)
    s3 = words(12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23)
    s4 = words(21, 22, 23, 12, 13, 14, 15, 16, 17, 18, 19, 20)
    s5 = words(-1, 23, -1, 20, 12, 13, 14, 15, 16, 17, 18, 19)
    s6 = words(-1, -1, -1, -1, 20, 21, 22, 23, -1, -1, -1, -1)
    s7 = words(20, -1, -1, 21, 22, 23, -1, -1, -1, -1, -1, -1)
    s8 = words(23, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22)
    s9 = words(-1, 20, 21, 22, 23, -1, -1, -1, -1, -1, -1, -1)
    s10 = words(-1, -1, -1, 23, 23, -1, -1, -1, -1, -1, -1, -1)
    t = s1 + 2 * s2 + s3 + s4 + s5 + s6 + s7 - s8 - s9 - s10
    while t < 0:
        t += P384
    while t >= P384:
        t -= P384
    return t


def reduce_p521(c: int) -> int:
    """Reduction modulo the Mersenne prime P-521: a single fold."""
    t = (c & ((1 << 521) - 1)) + (c >> 521)
    while t >= P521:
        t -= P521
    return t


PRIME_REDUCERS: dict[int, Callable[[int], int]] = {
    192: reduce_p192,
    224: reduce_p224,
    256: reduce_p256,
    384: reduce_p384,
    521: reduce_p521,
}

# ---------------------------------------------------------------------------
# Binary fields: irreducible polynomials (Eq. 4.8 - 4.12 of the paper).
# Each polynomial is stored as an int whose set bits are the exponents.
# ---------------------------------------------------------------------------

B163_POLY = (1 << 163) | (1 << 7) | (1 << 6) | (1 << 3) | 1
B233_POLY = (1 << 233) | (1 << 74) | 1
B283_POLY = (1 << 283) | (1 << 12) | (1 << 7) | (1 << 5) | 1
B409_POLY = (1 << 409) | (1 << 87) | 1
B571_POLY = (1 << 571) | (1 << 10) | (1 << 5) | (1 << 2) | 1

NIST_BINARY_POLYS: dict[int, int] = {
    163: B163_POLY,
    233: B233_POLY,
    283: B283_POLY,
    409: B409_POLY,
    571: B571_POLY,
}

#: Non-leading exponents of each reduction polynomial (used by both the
#: generic fast reducer and the Billie squaring-unit generator).
BINARY_TAIL_EXPONENTS: dict[int, tuple[int, ...]] = {
    163: (7, 6, 3, 0),
    233: (74, 0),
    283: (12, 7, 5, 0),
    409: (87, 0),
    571: (10, 5, 2, 0),
}


def reduce_binary(c: int, m: int) -> int:
    """Fast reduction of a polynomial product modulo the NIST polynomial.

    Repeatedly substitutes ``x^m == x^e1 + x^e2 + ...`` (the tail of the
    reduction polynomial), folding the high part down -- the integer-level
    equivalent of Algorithm 7.  Works for any degree of ``c``.
    """
    tail = BINARY_TAIL_EXPONENTS[m]
    while c >> m:
        high = c >> m
        c &= (1 << m) - 1
        for e in tail:
            c ^= high << e
    return c


# ---------------------------------------------------------------------------
# Security-level pairing used throughout the evaluation (Fig. 7.7 etc.):
# each prime key size is compared against the binary field of equivalent
# security.
# ---------------------------------------------------------------------------

EQUIVALENT_SECURITY: tuple[tuple[int, int], ...] = (
    (192, 163),
    (224, 233),
    (256, 283),
    (384, 409),
    (521, 571),
)


def prime_field(bits: int):
    """Return the shared :class:`PrimeField` instance for a NIST prime."""
    from repro.fields.prime import PrimeField

    return PrimeField.nist(bits)


def binary_field(m: int):
    """Return the shared :class:`BinaryField` instance for a NIST field."""
    from repro.fields.binary import BinaryField

    return BinaryField.nist(m)
