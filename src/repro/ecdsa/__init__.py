"""ECDSA: the paper's benchmark operation (Section 4.1).

A *signature* costs one sliding-window scalar multiplication plus
arithmetic modulo the group order (including one modular inversion); a
*verification* costs one twin scalar multiplication plus order arithmetic.
The combined Sign + Verify "closely models an SSL handshake on the client
side" and is the workload of every energy figure.
"""

from repro.ecdsa.core import (
    Signature,
    generate_keypair,
    sign,
    sign_digest,
    verify,
    verify_digest,
)
from repro.ecdsa.rfc6979 import deterministic_nonce

__all__ = [
    "Signature",
    "generate_keypair",
    "sign",
    "sign_digest",
    "verify",
    "verify_digest",
    "deterministic_nonce",
]
