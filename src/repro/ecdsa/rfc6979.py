"""Deterministic ECDSA nonces (RFC 6979-style).

The paper's embedded targets have no entropy source worth trusting, and a
reproduction needs bit-identical runs, so nonces are derived from the key
and message with HMAC-SHA256 following the RFC 6979 construction.  The
derivation is *not* on the energy-critical path (the paper counts hashing
as negligible next to the scalar multiplication), so it uses hashlib.
"""

from __future__ import annotations

import hashlib
import hmac


def _bits2int(data: bytes, qlen: int) -> int:
    """Leftmost qlen bits of a byte string as an integer."""
    value = int.from_bytes(data, "big")
    blen = len(data) * 8
    if blen > qlen:
        value >>= blen - qlen
    return value


def _int2octets(value: int, rlen_bytes: int) -> bytes:
    return value.to_bytes(rlen_bytes, "big")


def _bits2octets(data: bytes, q: int, qlen: int, rlen_bytes: int) -> bytes:
    z1 = _bits2int(data, qlen)
    z2 = z1 - q
    if z2 < 0:
        z2 = z1
    return _int2octets(z2, rlen_bytes)


def deterministic_nonce(digest: bytes, d: int, q: int) -> int:
    """Derive the per-signature secret k in [1, q-1] from (digest, key).

    Follows RFC 6979 section 3.2 with HMAC-SHA256.
    """
    qlen = q.bit_length()
    rlen_bytes = (qlen + 7) // 8
    v = b"\x01" * 32
    key = b"\x00" * 32
    bx = _int2octets(d, rlen_bytes) + _bits2octets(digest, q, qlen, rlen_bytes)
    key = hmac.new(key, v + b"\x00" + bx, hashlib.sha256).digest()
    v = hmac.new(key, v, hashlib.sha256).digest()
    key = hmac.new(key, v + b"\x01" + bx, hashlib.sha256).digest()
    v = hmac.new(key, v, hashlib.sha256).digest()
    while True:
        t = b""
        while len(t) * 8 < qlen:
            v = hmac.new(key, v, hashlib.sha256).digest()
            t += v
        k = _bits2int(t, qlen)
        if 1 <= k < q:
            return k
        key = hmac.new(key, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(key, v, hashlib.sha256).digest()
