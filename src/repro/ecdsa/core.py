"""ECDSA sign and verify (paper Section 4.1, Fig. 4.1).

The computational hierarchy matches the paper exactly:

    ECDSA
      +- scalar point multiplication (sliding window / twin)
      |    +- point add / double (mixed Jacobian-affine or LD-affine)
      |         +- finite-field arithmetic
      +- arithmetic modulo the group order n (on Pete in every config,
         inversion via the extended Euclidean algorithm)

Operations modulo the group order go through the curve's ``order_counter``
so the system model can cost them separately from field operations -- a
distinction that matters a lot once the field math is accelerated
("Amdahl's law strikes again", paper Section 8).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.fields.inversion import binary_euclid_inverse
from repro.ec.curves import Curve
from repro.ec.point import AffinePoint
from repro.ec.scalar import sliding_window_mul, twin_mul
from repro.ecdsa.rfc6979 import deterministic_nonce


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature pair (r, s)."""

    r: int
    s: int


class _OrderArith:
    """Arithmetic modulo the group order, with op counting."""

    def __init__(self, curve: Curve) -> None:
        self.n = curve.n
        self.counter = curve.order_counter

    def mul(self, a: int, b: int) -> int:
        self.counter.count("omul")
        return (a * b) % self.n

    def add(self, a: int, b: int) -> int:
        self.counter.count("oadd")
        return (a + b) % self.n

    def inv(self, a: int) -> int:
        self.counter.count("oinv")
        return binary_euclid_inverse(a, self.n)


def _digest_to_int(digest: bytes, n: int) -> int:
    """Leftmost bits of the digest, per ECDSA (FIPS 186)."""
    e = int.from_bytes(digest, "big")
    excess = len(digest) * 8 - n.bit_length()
    if excess > 0:
        e >>= excess
    return e


def generate_keypair(curve: Curve, seed: bytes = b"repro") -> tuple[int, AffinePoint]:
    """Deterministic key generation: d in [1, n-1], Q = d*G."""
    d = 0
    counter = 0
    while not 1 <= d < curve.n:
        material = hashlib.sha512(
            seed + curve.name.encode() + counter.to_bytes(4, "big")
        ).digest()
        d = int.from_bytes(material, "big") % curve.n
        counter += 1
    q = sliding_window_mul(curve, d, curve.generator)
    return d, q


def sign_digest(
    curve: Curve, d: int, digest: bytes, k: int | None = None
) -> Signature:
    """Sign a message digest: one scalar multiplication + order arithmetic.

    ``k`` may be supplied for testing; otherwise an RFC 6979 deterministic
    nonce is derived.
    """
    order = _OrderArith(curve)
    e = _digest_to_int(digest, curve.n)
    while True:
        if k is None:
            k_val = deterministic_nonce(digest, d, curve.n)
        else:
            k_val = k
        point = sliding_window_mul(curve, k_val, curve.generator)
        if not point:
            if k is not None:
                raise ValueError("provided nonce yields the point at infinity")
            digest = hashlib.sha256(digest).digest()
            continue
        if curve.is_binary:
            # r = x1 interpreted as an integer, reduced mod n
            r = point.x % curve.n
        else:
            r = point.x % curve.n
        order.counter.count("oadd")  # the reduction above
        if r == 0:
            if k is not None:
                raise ValueError("provided nonce yields r == 0")
            digest = hashlib.sha256(digest).digest()
            continue
        kinv = order.inv(k_val)
        s = order.mul(kinv, order.add(e, order.mul(r, d)))
        if s == 0:
            if k is not None:
                raise ValueError("provided nonce yields s == 0")
            digest = hashlib.sha256(digest).digest()
            continue
        return Signature(r, s)


def verify_digest(
    curve: Curve, public: AffinePoint, digest: bytes, sig: Signature
) -> bool:
    """Verify a signature: one *twin* scalar multiplication + order math."""
    if not (1 <= sig.r < curve.n and 1 <= sig.s < curve.n):
        return False
    if not curve.contains(public) or not public:
        return False
    order = _OrderArith(curve)
    e = _digest_to_int(digest, curve.n)
    w = order.inv(sig.s)
    u1 = order.mul(e, w)
    u2 = order.mul(sig.r, w)
    point = twin_mul(curve, u1, curve.generator, u2, public)
    if not point:
        return False
    order.counter.count("oadd")  # final reduction of x mod n
    return point.x % curve.n == sig.r


def sign(curve: Curve, d: int, message: bytes, k: int | None = None) -> Signature:
    """Sign a message (SHA-256 digest)."""
    return sign_digest(curve, d, hashlib.sha256(message).digest(), k)


def verify(
    curve: Curve, public: AffinePoint, message: bytes, sig: Signature
) -> bool:
    """Verify a message signature (SHA-256 digest)."""
    return verify_digest(curve, public, hashlib.sha256(message).digest(), sig)
