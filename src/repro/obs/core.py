"""Hierarchical span tracer + runtime metrics for the whole toolchain.

Where :mod:`repro.trace` observes the *simulated hardware* (cycles,
stalls, energy events on the trace bus), this module observes the
*system that runs it*: the sweep engine and its pool workers, the
content-addressed result cache, the superblock fast-path compiler, the
public API and the ``runall`` CLI.

The model mirrors the trace bus's null-guard contract:

* one process-global :class:`Telemetry` object, ``None`` by default --
  every instrumentation site is behind ``tel = obs.get()`` /
  ``if tel is not None:`` (or the :func:`span` helper, which returns a
  shared no-op span while disabled), so the disabled cost is one global
  read per site and nothing allocates;
* **spans** nest through a :class:`~contextvars.ContextVar`, carry
  string labels, and record wall-clock start (epoch seconds, so spans
  from different processes align on one timeline), duration and
  outcome;
* **cross-process propagation**: :func:`Telemetry.propagation_context`
  captures ``(trace_id, current span id)``; a pool worker activates a
  fresh telemetry from it (:func:`activate_from`), so its spans parent
  under the dispatching task span, then ships everything back with
  :func:`drain` for the parent to :meth:`Telemetry.merge` -- a whole
  ``--jobs N`` sweep reconstructs as one tree;
* **metrics** live in a :class:`repro.trace.metrics.MetricsRegistry`
  (counters, gauges, histograms with p50/p90/p99), merged across
  processes by :meth:`MetricsRegistry.merge_state` -- counters add,
  histogram observations pool.

Exports (OpenMetrics text, JSON, Chrome trace) live in
:mod:`repro.obs.export`; the ``python -m repro.obs report`` CLI in
:mod:`repro.obs.__main__`.
"""

from __future__ import annotations

import itertools
import os
import time
import uuid
from contextvars import ContextVar
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.metrics import Counter, Gauge, Histogram, MetricsRegistry

SCHEMA = "repro.obs.v1"

#: The id of the innermost active span in this execution context (the
#: parent of the next span started without an explicit parent).
_CURRENT: ContextVar[Optional[str]] = ContextVar("repro_obs_span",
                                                 default=None)

_SEQ = itertools.count(1)


def _new_span_id() -> str:
    """Process-unique span id; the pid prefix keeps ids from colliding
    across pool workers without any coordination."""
    return f"{os.getpid():x}-{next(_SEQ):x}"


def _new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed operation; usable as a context manager or manually.

    ``with tel.span("sweep.task", artifact=...)`` starts the span,
    makes it the context parent for anything opened inside (including
    callees in other modules), and finishes it on exit with status
    ``"error"`` if an exception escaped.  The manual protocol --
    :meth:`start` / :meth:`finish` -- exists for callers whose span
    lifetime is not lexical (the pool loop holds one span per running
    worker); manual spans pass ``activate=False`` so they never leak
    into the caller's context.
    """

    __slots__ = ("name", "labels", "span_id", "parent_id", "trace_id",
                 "pid", "start_s", "wall_s", "status", "_tel", "_t0",
                 "_token")

    def __init__(self, tel: "Telemetry", name: str,
                 labels: dict[str, str],
                 parent_id: str | None = None) -> None:
        self._tel = tel
        self.name = name
        self.labels = labels
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.trace_id = tel.trace_id
        self.pid = os.getpid()
        self.start_s = 0.0
        self.wall_s = 0.0
        self.status = "open"
        self._t0 = 0.0
        self._token = None

    def start(self, activate: bool = True) -> "Span":
        if self.parent_id is None:
            self.parent_id = _CURRENT.get()
        self.start_s = time.time()
        self._t0 = time.perf_counter()
        if activate:
            self._token = _CURRENT.set(self.span_id)
        return self

    def finish(self, status: str = "ok") -> "Span":
        if self.status != "open":
            return self
        self.wall_s = time.perf_counter() - self._t0
        self.status = status
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self._tel._record(self)
        return self

    def annotate(self, **labels: str) -> "Span":
        self.labels.update(labels)
        return self

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish("error" if exc_type is not None else "ok")
        return False

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "pid": self.pid,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "status": self.status,
            "labels": dict(self.labels),
        }


class _NullSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def start(self, activate: bool = True) -> "_NullSpan":
        return self

    def finish(self, status: str = "ok") -> "_NullSpan":
        return self

    def annotate(self, **labels: str) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Telemetry:
    """One enabled telemetry plane: finished spans + a metrics registry.

    Constructed by :func:`enable` (root process) or
    :func:`activate_from` (pool workers).  The registry import is lazy
    so that importing :mod:`repro.obs` itself stays cheap for the
    modules that only null-check it.
    """

    def __init__(self, trace_id: str | None = None) -> None:
        from repro.trace.metrics import MetricsRegistry

        self.trace_id = trace_id or _new_trace_id()
        self.created_s = time.time()
        self.spans: list[dict] = []
        self.registry: MetricsRegistry = MetricsRegistry()
        self.merged_snapshots = 0

    # -- spans -----------------------------------------------------------

    def span(self, name: str, **labels: str) -> Span:
        """A context-manager span (started on ``__enter__``)."""
        return Span(self, name, labels)

    def begin(self, name: str, parent: str | None = None,
              activate: bool = False, **labels: str) -> Span:
        """Start a manual span now; pair with :meth:`Span.finish`."""
        return Span(self, name, labels, parent_id=parent).start(
            activate=activate)

    def emit(self, name: str, wall_s: float = 0.0,
             parent: str | None = None, status: str = "ok",
             start_s: float | None = None, **labels: str) -> Span:
        """Record an already-elapsed operation as a finished span."""
        span = Span(self, name, labels, parent_id=parent)
        if span.parent_id is None:
            span.parent_id = _CURRENT.get()
        span.start_s = (time.time() - wall_s if start_s is None
                        else start_s)
        span.wall_s = wall_s
        span.status = status
        self._record(span)
        return span

    def _record(self, span: Span) -> None:
        self.spans.append(span.as_dict())

    # -- metrics ---------------------------------------------------------

    def counter(self, name: str, **labels: str) -> "Counter":
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: str) -> "Gauge":
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: str) -> "Histogram":
        return self.registry.histogram(name, **labels)

    # -- cross-process ---------------------------------------------------

    def propagation_context(self) -> dict:
        """What a worker needs to join this trace: the trace id and the
        span the worker's root span should parent under."""
        return {"trace_id": self.trace_id, "parent_id": _CURRENT.get()}

    def snapshot(self) -> dict:
        """The full telemetry state as pure JSON-serializable data."""
        return {
            "schema": SCHEMA,
            "trace_id": self.trace_id,
            "pid": os.getpid(),
            "created_s": self.created_s,
            "spans": list(self.spans),
            "metrics": self.registry.state_dict(),
        }

    def merge(self, snapshot: dict | None) -> None:
        """Fold a worker's :meth:`snapshot` into this telemetry: spans
        concatenate (they carry their own ids/parents), counters add,
        histogram observations pool."""
        if not snapshot:
            return
        self.spans.extend(snapshot.get("spans", []))
        self.registry.merge_state(snapshot.get("metrics", {}))
        self.merged_snapshots += 1


# ---------------------------------------------------------------------------
# The process-global plane (the null-guarded switch)
# ---------------------------------------------------------------------------

_TELEMETRY: Telemetry | None = None


def get() -> Telemetry | None:
    """The active telemetry, or ``None`` (the instrumentation guard)."""
    return _TELEMETRY


def enabled() -> bool:
    return _TELEMETRY is not None


def enable(trace_id: str | None = None) -> Telemetry:
    """Switch telemetry on (idempotent: an active plane is kept)."""
    global _TELEMETRY
    if _TELEMETRY is None:
        _TELEMETRY = Telemetry(trace_id)
    return _TELEMETRY


def disable() -> dict | None:
    """Switch telemetry off; returns the final snapshot (or ``None``)."""
    global _TELEMETRY
    tel, _TELEMETRY = _TELEMETRY, None
    _CURRENT.set(None)
    return tel.snapshot() if tel is not None else None


def span(name: str, **labels: str) -> Span | _NullSpan:
    """A span under the active telemetry, or the shared no-op span."""
    tel = _TELEMETRY
    if tel is None:
        return NULL_SPAN
    return tel.span(name, **labels)


def counter(name: str, **labels: str) -> "Counter | None":
    tel = _TELEMETRY
    return None if tel is None else tel.counter(name, **labels)


def gauge(name: str, **labels: str) -> "Gauge | None":
    tel = _TELEMETRY
    return None if tel is None else tel.gauge(name, **labels)


def histogram(name: str, **labels: str) -> "Histogram | None":
    tel = _TELEMETRY
    return None if tel is None else tel.histogram(name, **labels)


def current_span_id() -> str | None:
    return _CURRENT.get()


def propagation_context() -> dict | None:
    """Context for a worker process, or ``None`` while disabled."""
    tel = _TELEMETRY
    return None if tel is None else tel.propagation_context()


def activate_from(ctx: dict) -> Telemetry:
    """Worker-side: join the parent's trace.

    Replaces any existing plane with a fresh one carrying the parent's
    trace id, and roots this process's context at the parent span id so
    every span opened here parents into the parent's tree.
    """
    global _TELEMETRY
    _TELEMETRY = Telemetry(trace_id=ctx.get("trace_id"))
    _CURRENT.set(ctx.get("parent_id"))
    return _TELEMETRY


def drain() -> dict | None:
    """Worker-side: final snapshot, then disable (ship this back)."""
    return disable()
