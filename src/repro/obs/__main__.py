"""``python -m repro.obs`` -- inspect and re-export saved telemetry.

::

    python -m repro.obs report [telemetry.json] [--spans] [--metrics]
                               [--json OUT] [--openmetrics OUT]
                               [--chrome OUT]

``report`` reads a telemetry snapshot (default:
``results/telemetry/telemetry.json``, i.e. what a ``--obs`` run wrote)
and prints a summary; ``--spans`` adds the ASCII span tree,
``--metrics`` the collected metric table, and the ``--json`` /
``--openmetrics`` / ``--chrome`` options re-export to files (pass ``-``
to print OpenMetrics or JSON to stdout).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.obs import export as ox


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        snapshot = json.load(fh)
    schema = snapshot.get("schema")
    if schema != "repro.obs.v1":
        raise SystemExit(f"{path}: unknown telemetry schema {schema!r}")
    return snapshot


def _summary(snapshot: dict) -> str:
    spans = snapshot.get("spans", [])
    roots, children = ox.span_tree(spans)
    registry = ox.registry_from_state(snapshot.get("metrics", {}))
    pids = sorted({s.get("pid") for s in spans})
    lines = [
        f"trace {snapshot.get('trace_id')}  "
        f"({len(spans)} spans, {len(roots)} root(s), "
        f"{len(pids)} process(es))",
    ]
    for root in roots:
        lines.append(f"  root: {root['name']}  "
                     f"{root.get('wall_s', 0.0):.3f}s  "
                     f"status={root.get('status')}  "
                     f"children={len(children.get(root['span_id'], []))}")
    samples = registry.collect()
    if samples:
        lines.append(f"  metrics: {len(samples)} sample(s) across "
                     f"{len({s.name for s in samples})} familie(s)")
    return "\n".join(lines)


def _metric_table(snapshot: dict) -> str:
    registry = ox.registry_from_state(snapshot.get("metrics", {}))
    lines = []
    for sample in registry.collect():
        if sample.kind == "series":
            value = f"({len(sample.value)} points)"
        elif sample.kind == "histogram":
            value = (f"count={sample.value['count']:.0f} "
                     f"p50={sample.value['p50']:.6g} "
                     f"p90={sample.value['p90']:.6g} "
                     f"p99={sample.value['p99']:.6g}")
        else:
            value = f"{sample.value:g}"
        labels = ("{" + ",".join(f"{k}={v}" for k, v in
                                 sorted(sample.labels.items())) + "}"
                  if sample.labels else "")
        lines.append(f"  {sample.kind:<9} {sample.name}{labels} = {value}")
    return "\n".join(lines) if lines else "  (no metrics)"


def _emit(text: str, out: str) -> None:
    if out == "-":
        sys.stdout.write(text)
        return
    os.makedirs(os.path.dirname(os.path.abspath(out)), exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {out}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="inspect and re-export saved telemetry snapshots")
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="summarize a telemetry snapshot")
    report.add_argument(
        "snapshot", nargs="?",
        default=os.path.join(ox.default_obs_dir(), "telemetry.json"),
        help="telemetry.json to read (default: %(default)s)")
    report.add_argument("--spans", action="store_true",
                        help="print the span tree")
    report.add_argument("--metrics", action="store_true",
                        help="print the metric table")
    report.add_argument("--json", metavar="OUT",
                        help="re-export the snapshot as JSON ('-': stdout)")
    report.add_argument("--openmetrics", metavar="OUT",
                        help="export OpenMetrics text ('-': stdout)")
    report.add_argument("--chrome", metavar="OUT",
                        help="export a Chrome trace of the spans")
    args = parser.parse_args(argv)

    snapshot = _load(args.snapshot)
    print(_summary(snapshot))
    if args.spans:
        print("\nspans:")
        print(ox.render_spans(snapshot.get("spans", [])))
    if args.metrics:
        print("\nmetrics:")
        print(_metric_table(snapshot))
    if args.json:
        _emit(json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
              args.json)
    if args.openmetrics:
        om = ox.to_openmetrics(snapshot)
        ox.parse_openmetrics(om)   # self-check before handing it out
        _emit(om, args.openmetrics)
    if args.chrome:
        from repro.trace.chrome import write_trace

        os.makedirs(os.path.dirname(os.path.abspath(args.chrome)),
                    exist_ok=True)
        write_trace(args.chrome, ox.spans_to_chrome(snapshot))
        print(f"wrote {args.chrome}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
