"""``repro.obs`` -- the toolchain's telemetry plane.

Hierarchical wall-clock spans + runtime metrics (counters, gauges,
p50/p90/p99 histograms) for the sweep engine, result cache, fast-path
compiler, API and CLI.  Disabled by default; every instrumentation site
follows the trace bus's null-guard contract (``tel = obs.get()`` /
``if tel is not None:``).  See :mod:`repro.obs.core` for the model and
:mod:`repro.obs.export` for OpenMetrics/JSON/Chrome exports.
"""

from repro.obs.core import (
    NULL_SPAN,
    SCHEMA,
    Span,
    Telemetry,
    activate_from,
    counter,
    current_span_id,
    disable,
    drain,
    enable,
    enabled,
    gauge,
    get,
    histogram,
    propagation_context,
    span,
)

__all__ = [
    "NULL_SPAN",
    "SCHEMA",
    "Span",
    "Telemetry",
    "activate_from",
    "counter",
    "current_span_id",
    "disable",
    "drain",
    "enable",
    "enabled",
    "gauge",
    "get",
    "histogram",
    "propagation_context",
    "span",
]
