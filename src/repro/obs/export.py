"""Exports for a telemetry snapshot: OpenMetrics, JSON, span tree,
Chrome trace, ledger record.

A snapshot is the pure-data dict produced by
:meth:`repro.obs.core.Telemetry.snapshot` (``schema: repro.obs.v1``):
``spans`` (finished span dicts from every process in the trace) plus
``metrics`` (a :meth:`MetricsRegistry.state_dict`).  Everything here is
read-only over that dict, so reports can be regenerated from a saved
``telemetry.json`` long after the run.
"""

from __future__ import annotations

import json
import os

from repro.trace.metrics import QUANTILES, Histogram, MetricsRegistry


def registry_from_state(state: dict) -> MetricsRegistry:
    """Rebuild a registry from a snapshot's ``metrics`` state dict."""
    registry = MetricsRegistry()
    registry.merge_state(state or {})
    return registry


# ---------------------------------------------------------------------------
# OpenMetrics text
# ---------------------------------------------------------------------------

def _sanitize(name: str) -> str:
    """Map a metric/label name onto the OpenMetrics charset."""
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not out or not (out[0].isalpha() or out[0] == "_"):
        out = "_" + out
    return out


def _labelset(labels: dict[str, str], extra: dict[str, str] | None = None
              ) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_sanitize(k)}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(merged.items()))
    return "{" + body + "}"


def _fmt(value: float) -> str:
    value = float(value)
    return str(int(value)) if value == int(value) else repr(value)


def to_openmetrics(snapshot: dict) -> str:
    """Render the snapshot's metrics as OpenMetrics text.

    Counters emit a ``counter`` family with the ``_total`` sample
    suffix; gauges emit plainly; histograms emit as ``summary``
    families (``{quantile="0.5"}`` samples plus ``_count``/``_sum``).
    Series (cycle-indexed traces) have no OpenMetrics shape and are
    skipped.  Ends with the mandatory ``# EOF``.
    """
    registry = registry_from_state(snapshot.get("metrics", {}))
    families: dict[tuple[str, str], list[tuple[dict, object]]] = {}
    for (name, kind, labels), metric in sorted(
            registry._metrics.items(), key=lambda kv: kv[0][:2]):
        if kind == "series":
            continue
        families.setdefault((_sanitize(name), kind), []).append(
            (dict(labels), metric))

    lines: list[str] = []
    for (name, kind), entries in families.items():
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            for labels, metric in entries:
                lines.append(f"{name}_total{_labelset(labels)} "
                             f"{_fmt(metric.value)}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            for labels, metric in entries:
                lines.append(f"{name}{_labelset(labels)} "
                             f"{_fmt(metric.value)}")
        elif kind == "histogram":
            lines.append(f"# TYPE {name} summary")
            for labels, metric in entries:
                assert isinstance(metric, Histogram)
                for q in QUANTILES:
                    lines.append(
                        f"{name}{_labelset(labels, {'quantile': str(q)})}"
                        f" {_fmt(metric.quantile(q))}")
                lines.append(f"{name}_count{_labelset(labels)} "
                             f"{_fmt(metric.count)}")
                lines.append(f"{name}_sum{_labelset(labels)} "
                             f"{_fmt(metric.sum)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> dict[str, list[dict]]:
    """Minimal OpenMetrics parser (the subset :func:`to_openmetrics`
    emits), used by the CI smoke assertions and the tests.

    Returns ``{family_name: [{"sample", "labels", "value"}, ...]}`` and
    raises ``ValueError`` on malformed lines or a missing ``# EOF``.
    """
    families: dict[str, list[dict]] = {}
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("missing # EOF terminator")
    family = None
    for line in lines[:-1]:
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"malformed TYPE line: {line!r}")
            family = parts[2]
            families.setdefault(family, [])
            continue
        if line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {line!r}")
        sample, labels = name_part, {}
        if "{" in name_part:
            sample, _, rest = name_part.partition("{")
            body = rest.rstrip("}")
            for item in body.split(","):
                if not item:
                    continue
                key, _, raw = item.partition("=")
                if not raw.startswith('"') or not raw.endswith('"'):
                    raise ValueError(f"malformed label in: {line!r}")
                labels[key] = raw[1:-1].replace('\\"', '"').replace(
                    "\\\\", "\\")
        value = float(value_part)
        if family is None or not sample.startswith(family):
            raise ValueError(f"sample {sample!r} outside its family "
                             f"(current: {family!r})")
        families[family].append(
            {"sample": sample, "labels": labels, "value": value})
    return families


# ---------------------------------------------------------------------------
# Span tree
# ---------------------------------------------------------------------------

def span_tree(spans: list[dict]) -> tuple[list[dict], dict[str, list[dict]]]:
    """Index spans into ``(roots, children_by_parent_id)``.

    A root is a span whose ``parent_id`` is ``None`` or references a
    span not present in the snapshot (a worker subtree whose parent
    record was lost still renders, as its own root).
    """
    by_id = {s["span_id"]: s for s in spans}
    roots: list[dict] = []
    children: dict[str, list[dict]] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(s)
        else:
            roots.append(s)
    for group in children.values():
        group.sort(key=lambda s: s.get("start_s", 0.0))
    roots.sort(key=lambda s: s.get("start_s", 0.0))
    return roots, children


def render_spans(spans: list[dict]) -> str:
    """ASCII tree of the span hierarchy with wall times and status."""
    roots, children = span_tree(spans)
    lines: list[str] = []

    def walk(span: dict, depth: int) -> None:
        labels = span.get("labels") or {}
        label_txt = ("  [" + " ".join(f"{k}={v}"
                                      for k, v in sorted(labels.items()))
                     + "]") if labels else ""
        status = span.get("status", "?")
        flag = "" if status == "ok" else f"  !{status}"
        lines.append(f"{'  ' * depth}{span['name']:<28} "
                     f"{span.get('wall_s', 0.0) * 1e3:>9.2f} ms"
                     f"  pid={span.get('pid')}{flag}{label_txt}")
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    if not lines:
        return "(no spans)"
    return "\n".join(lines)


def spans_to_chrome(snapshot: dict) -> dict:
    """Spans as a Chrome ``trace_event`` object (one track per pid),
    reusing :func:`repro.trace.chrome.trace_object` so the wall-clock
    telemetry opens in the same viewer as the cycle-domain traces."""
    from repro.trace.chrome import trace_object

    spans = snapshot.get("spans", [])
    if spans:
        t0 = min(s.get("start_s", 0.0) for s in spans)
    else:
        t0 = 0.0
    events: list[dict] = []
    for pid in sorted({s.get("pid", 0) for s in spans}):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": f"pid {pid}"}})
    for s in spans:
        event = {
            "name": s["name"],
            "ph": "X",
            "pid": s.get("pid", 0),
            "tid": 1,
            "ts": (s.get("start_s", 0.0) - t0) * 1e6,
            "dur": max(s.get("wall_s", 0.0), 1e-6) * 1e6,
            "args": {"status": s.get("status"),
                     "span_id": s.get("span_id"),
                     **(s.get("labels") or {})},
        }
        events.append(event)
    return trace_object(events, other={"trace_id": snapshot.get("trace_id"),
                                       "schema": snapshot.get("schema")})


# ---------------------------------------------------------------------------
# Files + ledger
# ---------------------------------------------------------------------------

def default_obs_dir() -> str:
    """Where telemetry lands by default: ``$REPRO_OBS_DIR`` or
    ``results/telemetry`` under the repo root."""
    from repro.trace.record import repo_root

    return os.environ.get(
        "REPRO_OBS_DIR", os.path.join(repo_root(), "results", "telemetry"))


def write_export(snapshot: dict, out_dir: str | None = None) -> dict[str, str]:
    """Write ``telemetry.json`` + ``telemetry.om`` (+ chrome trace)
    under ``out_dir``; returns ``{format: path}``."""
    from repro.trace.chrome import write_trace

    out_dir = out_dir or default_obs_dir()
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "json": os.path.join(out_dir, "telemetry.json"),
        "openmetrics": os.path.join(out_dir, "telemetry.om"),
        "chrome": os.path.join(out_dir, "telemetry.trace.json"),
    }
    with open(paths["json"], "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(paths["openmetrics"], "w", encoding="utf-8") as fh:
        fh.write(to_openmetrics(snapshot))
    write_trace(paths["chrome"], spans_to_chrome(snapshot))
    return paths


def _metric_value(registry: MetricsRegistry, name: str, kind: str = "counter"
                  ) -> float:
    """Sum of a metric family's values across label sets (0 if absent)."""
    total = 0.0
    for (mname, mkind, _), metric in registry._metrics.items():
        if mname == name and mkind == kind:
            total += getattr(metric, "value", 0.0)
    return total


def telemetry_record(snapshot: dict, artifact: str = "telemetry",
                     config: str = "", export_path: str | None = None
                     ) -> dict:
    """A ``kind="telemetry"`` ledger record summarizing the snapshot:
    headline cache/fastpath/task metrics in ``data`` plus the span
    count, so the regression ledger can diff runtime health between
    commits without parsing the full export."""
    from repro.trace.record import bench_record

    registry = registry_from_state(snapshot.get("metrics", {}))
    spans = snapshot.get("spans", [])
    task_hist = Histogram()
    for (name, kind, _), metric in registry._metrics.items():
        if name == "sweep_task_wall_s" and kind == "histogram":
            task_hist.values.extend(metric.values)
    roots, _ = span_tree(spans)
    wall_s = max((s.get("wall_s", 0.0) for s in roots), default=0.0)
    data = {
        "trace_id": snapshot.get("trace_id"),
        "spans": len(spans),
        "span_roots": len(roots),
        "pids": len({s.get("pid") for s in spans}),
        "cache": {
            "hits": _metric_value(registry, "sweep_cache_hits"),
            "misses": _metric_value(registry, "sweep_cache_misses"),
            "writes": _metric_value(registry, "sweep_cache_writes"),
            "read_bytes": _metric_value(registry, "sweep_cache_read_bytes"),
            "written_bytes": _metric_value(registry,
                                           "sweep_cache_written_bytes"),
        },
        "fastpath": {
            "blocks_compiled": _metric_value(registry,
                                             "fastpath_blocks_compiled"),
            "code_cache_hits": _metric_value(registry,
                                             "fastpath_code_cache_hits"),
            "blocks_discovered": _metric_value(registry,
                                               "fastpath_blocks_discovered"),
            "deopt_runs": _metric_value(registry, "fastpath_deopt_runs"),
        },
        "tasks": _metric_value(registry, "sweep_tasks_total"),
        "retries": _metric_value(registry, "sweep_retries_total"),
        "reaped": _metric_value(registry, "sweep_reaped_total"),
        "task_wall_s": task_hist.summary(),
    }
    if export_path:
        data["export"] = export_path
    return bench_record(artifact, config=config, wall_s=wall_s,
                        data=data, kind="telemetry")
