"""Montgomery multiplication (paper Section 4.2.1, Algorithm 5).

Montgomery reduction is the hardware-preferred reduction because a single
algorithm covers any odd modulus -- only parameters (word count k and the
precomputed n'_0 = -n^-1 mod 2^w) change, which is precisely why Monte's
FFAU microcode implements **CIOS** (Coarsely Integrated Operand Scanning).

Two of the Koc/Acar/Kaliski variants are implemented:

* :func:`cios_montmul` -- operand scanning with the reduction folded into
  every outer-loop iteration; the FFAU microprogram in
  :mod:`repro.accel.microcode` follows this word flow exactly.
* :func:`fips_montmul` -- Finely Integrated Product Scanning, the variant
  the paper benchmarked against product scanning + NIST reduction on the
  ISA-extended core (and rejected).

:class:`MontgomeryContext` packages the domain conversions R = 2^(k*w).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fields.inversion import egcd_inverse
from repro.mp.words import from_int, to_int, word_mask


def mont_n0_prime(n: int, w: int = 32) -> int:
    """n'_0 = -n^{-1} mod 2^w, the per-modulus CIOS constant."""
    r = 1 << w
    return (-egcd_inverse(n % r, r)) % r


def cios_montmul(
    a: list[int], b: list[int], n: list[int], n0p: int, w: int = 32
) -> list[int]:
    """CIOS Montgomery multiplication (Algorithm 5).

    Computes a*b*R^{-1} mod n, R = 2^(k*w), with the final conditional
    subtraction.  The word-by-word flow (two inner loops of k iterations,
    T array of k+2 words) matches Monte's FFAU microcode and its cycle
    equation cc = 2k^2 + 6k + (k+1)p + 22 (Eq. 5.2).
    """
    k = len(a)
    if len(b) != k or len(n) != k:
        raise ValueError("operands and modulus must have equal word counts")
    mask = word_mask(w)
    t = [0] * (k + 2)
    for i in range(k):
        # --- multiplication inner loop: t += a * b[i]
        carry = 0
        bi = b[i]
        for j in range(k):
            cs = t[j] + a[j] * bi + carry
            t[j] = cs & mask
            carry = cs >> w
        cs = t[k] + carry
        t[k] = cs & mask
        t[k + 1] = cs >> w
        # --- reduction inner loop: t = (t + m * n) / 2^w
        m = (t[0] * n0p) & mask
        cs = t[0] + m * n[0]
        carry = cs >> w
        for j in range(1, k):
            cs = t[j] + m * n[j] + carry
            t[j - 1] = cs & mask
            carry = cs >> w
        cs = t[k] + carry
        t[k - 1] = cs & mask
        t[k] = t[k + 1] + (cs >> w)
    result = t[:k]
    if to_int(result, w) + (t[k] << (k * w)) >= to_int(n, w):
        value = to_int(result, w) + (t[k] << (k * w)) - to_int(n, w)
        result = from_int(value, k, w)
    return result


def fips_montmul(
    a: list[int], b: list[int], n: list[int], n0p: int, w: int = 32
) -> list[int]:
    """FIPS (Finely Integrated Product Scanning) Montgomery multiplication.

    Product-scanning structure: for each column, accumulate a_j*b_{i-j} and
    m_j*n_{i-j} into a triple-word accumulator, generating one m word per
    low column.  Requires the accumulator ISA extensions to be efficient in
    software; the paper measured it slower than product scanning with NIST
    reduction, hence it is used only as a cross-check here.
    """
    k = len(a)
    if len(b) != k or len(n) != k:
        raise ValueError("operands and modulus must have equal word counts")
    mask = word_mask(w)
    m = [0] * k
    acc = 0
    for i in range(k):
        for j in range(i):
            acc += a[j] * b[i - j] + m[j] * n[i - j]
        acc += a[i] * b[0]
        m[i] = (acc * n0p) & mask
        acc += m[i] * n[0]
        assert acc & mask == 0
        acc >>= w
    out = [0] * (k + 1)
    for i in range(k, 2 * k):
        for j in range(i - k + 1, k):
            acc += a[j] * b[i - j] + m[j] * n[i - j]
        out[i - k] = acc & mask
        acc >>= w
    out[k] = acc & mask
    value = to_int(out, w)
    n_val = to_int(n, w)
    if value >= n_val:
        value -= n_val
    return from_int(value, k, w)


@dataclass
class MontgomeryContext:
    """Montgomery domain for a fixed odd modulus.

    Attributes
    ----------
    n_words: modulus limbs.
    n0p:     -n^{-1} mod 2^w.
    r2:      R^2 mod n as limbs (for entering the domain).
    """

    n: int
    w: int = 32
    k: int = 0
    n_words: list[int] = None  # type: ignore[assignment]
    n0p: int = 0
    r2: list[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n % 2 == 0:
            raise ValueError("Montgomery modulus must be odd")
        self.k = -(-self.n.bit_length() // self.w)
        self.n_words = from_int(self.n, self.k, self.w)
        self.n0p = mont_n0_prime(self.n, self.w)
        r = 1 << (self.k * self.w)
        self.r2 = from_int((r * r) % self.n, self.k, self.w)

    def to_mont(self, x: int) -> list[int]:
        """x -> x*R mod n (one CIOS with R^2)."""
        xw = from_int(x % self.n, self.k, self.w)
        return cios_montmul(xw, self.r2, self.n_words, self.n0p, self.w)

    def from_mont(self, xw: list[int]) -> int:
        """x*R -> x (one CIOS with 1)."""
        one = from_int(1, self.k, self.w)
        return to_int(
            cios_montmul(xw, one, self.n_words, self.n0p, self.w), self.w
        )

    def mul(self, aw: list[int], bw: list[int]) -> list[int]:
        return cios_montmul(aw, bw, self.n_words, self.n0p, self.w)
