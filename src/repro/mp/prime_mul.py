"""Multi-precision integer multiplication (paper Section 4.2.1, 5.1.2).

Three multiplication structures are implemented:

* :func:`operand_scanning_mul` -- Algorithm 2, the "school-book" nested
  loop with a (carry, sum) multiply-add in the inner loop.  This is what
  the baseline software uses (it performed marginally better than product
  scanning without ISA support).
* :func:`product_scanning_mul` -- Algorithm 3 (Comba), accumulating each
  result column in a triple-word (t, u, v) accumulator.  This is only
  profitable with the MADDU/SHA accumulator ISA extensions (Table 5.1).
* :func:`karatsuba_word_mul` -- Eq. 5.1, a single *word* multiplication
  decomposed into three half-word multiplies the way Pete's multi-cycle
  multiplier implements it in hardware.

All functions also report simple structural statistics (word multiplies,
memory reads/writes) that the cycle model can sanity-check against the
assembly kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mp.words import word_mask


@dataclass
class MulTrace:
    """Structural statistics of one multi-precision multiplication."""

    word_muls: int = 0
    word_adds: int = 0
    mem_reads: int = 0
    mem_writes: int = 0

    def merge(self, other: "MulTrace") -> None:
        self.word_muls += other.word_muls
        self.word_adds += other.word_adds
        self.mem_reads += other.mem_reads
        self.mem_writes += other.mem_writes


def operand_scanning_mul(
    a: list[int], b: list[int], w: int = 32, trace: MulTrace | None = None
) -> list[int]:
    """Operand-scanning multiplication (Algorithm 2).

    P = A * B with the outer loop over the multiplier words b_i and the
    inner loop performing (u, v) = a_j * b_i + p_{i+j} + u.
    Returns 2k result words.
    """
    k = len(a)
    if len(b) != k:
        raise ValueError("operands must have equal word counts")
    mask = word_mask(w)
    p = [0] * (2 * k)
    for i in range(k):
        u = 0
        bi = b[i]
        if trace:
            trace.mem_reads += 1
        for j in range(k):
            uv = a[j] * bi + p[i + j] + u
            if trace:
                trace.word_muls += 1
                trace.word_adds += 2
                trace.mem_reads += 2
                trace.mem_writes += 1
            p[i + j] = uv & mask
            u = uv >> w
        p[i + k] = u
        if trace:
            trace.mem_writes += 1
    return p


def product_scanning_mul(
    a: list[int], b: list[int], w: int = 32, trace: MulTrace | None = None
) -> list[int]:
    """Product-scanning (Comba) multiplication (Algorithm 3).

    Each output column p_i accumulates all a_j * b_{i-j} partial products
    into a triple-word accumulator (t, u, v); with the MADDU instruction the
    accumulator lives in (OvFlo, Hi, Lo) and the inner loop is a single
    multiply-accumulate.  Returns 2k result words.
    """
    k = len(a)
    if len(b) != k:
        raise ValueError("operands must have equal word counts")
    mask = word_mask(w)
    p = [0] * (2 * k)
    acc = 0  # models the (t, u, v) = (OvFlo, Hi, Lo) register set
    for i in range(2 * k - 1):
        lo = max(0, i - k + 1)
        hi = min(i, k - 1)
        for j in range(lo, hi + 1):
            acc += a[j] * b[i - j]
            if trace:
                trace.word_muls += 1
                trace.word_adds += 1
                trace.mem_reads += 2
        p[i] = acc & mask
        if trace:
            trace.mem_writes += 1
        acc >>= w  # the SHA instruction: shift the accumulator right a word
    p[2 * k - 1] = acc & mask
    if trace:
        trace.mem_writes += 1
    return p


def product_scanning_sqr(
    a: list[int], w: int = 32, trace: MulTrace | None = None
) -> list[int]:
    """Product-scanning squaring using the M2ADDU optimization.

    Off-diagonal partial products appear twice in a square; M2ADDU
    accumulates 2*rs*rt in one instruction, nearly halving the word
    multiplies (k*(k+1)/2 instead of k^2).
    """
    k = len(a)
    mask = word_mask(w)
    p = [0] * (2 * k)
    acc = 0
    for i in range(2 * k - 1):
        lo = max(0, i - k + 1)
        hi = min(i, k - 1)
        for j in range(lo, hi + 1):
            other = i - j
            if j > other:
                break
            prod = a[j] * a[other]
            acc += prod if j == other else 2 * prod
            if trace:
                trace.word_muls += 1
                trace.word_adds += 1
                trace.mem_reads += 2
        p[i] = acc & mask
        if trace:
            trace.mem_writes += 1
        acc >>= w
    p[2 * k - 1] = acc & mask
    return p


def karatsuba_word_mul(a: int, b: int, w: int = 32) -> tuple[int, int]:
    """One w-bit x w-bit multiply via Karatsuba decomposition (Eq. 5.1).

    Splits both operands into half words and uses three half-word
    multiplications plus a four-port add -- the exact datapath of Pete's
    multi-cycle multiplier (Fig. 5.2).  Returns (hi, lo) result words.
    The middle term (AH - AL)*(BL - BH) can be negative; the hardware
    handles this with a 17x17 signed multiplier block, and so do we.
    """
    half = w // 2
    mask_half = (1 << half) - 1
    mask_word = word_mask(w)
    a_hi, a_lo = a >> half, a & mask_half
    b_hi, b_lo = b >> half, b & mask_half
    t_high = a_hi * b_hi
    t_low = a_lo * b_lo
    t_mid = (a_hi - a_lo) * (b_lo - b_hi)  # signed 17x17 product
    product = (t_high << w) + ((t_high + t_low + t_mid) << half) + t_low
    return (product >> w) & mask_word, product & mask_word


def school_book_word_mul(a: int, b: int, w: int = 32) -> tuple[int, int]:
    """Reference w x w multiply (four half-word products); used by the
    multiplier-ablation study (paper Section 7.8)."""
    product = a * b
    return (product >> w) & word_mask(w), product & word_mask(w)
