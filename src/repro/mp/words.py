"""Limb (word-array) helpers.

A multi-precision value of n bits on a w-bit datapath occupies
k = ceil(n/w) little-endian words (paper Section 4.2).  All routines in
:mod:`repro.mp` operate on plain ``list[int]`` limb arrays so that the
generated assembly kernels can mirror them access-for-access.
"""

from __future__ import annotations


def word_mask(w: int) -> int:
    """All-ones mask for a w-bit word."""
    return (1 << w) - 1


def words_for(bits: int, w: int = 32) -> int:
    """k = ceil(bits / w)."""
    return -(-bits // w)


def from_int(value: int, k: int, w: int = 32) -> list[int]:
    """Split ``value`` into k little-endian w-bit words."""
    if value < 0:
        raise ValueError("limb arrays are unsigned")
    if value >> (k * w):
        raise OverflowError(f"{value.bit_length()} bits do not fit in {k}x{w}")
    mask = word_mask(w)
    return [(value >> (w * i)) & mask for i in range(k)]


def to_int(words: list[int], w: int = 32) -> int:
    """Recombine little-endian w-bit words into an int."""
    value = 0
    for i, word in enumerate(words):
        value |= word << (w * i)
    return value


def add_words(a: list[int], b: list[int], w: int = 32) -> tuple[list[int], int]:
    """Multi-precision add; returns (sum words, carry-out bit).

    O(k): one full-word add with carry per limb, exactly the loop the
    ``mp_add`` assembly kernel implements with ADDU/SLTU pairs.
    """
    if len(a) != len(b):
        raise ValueError("length mismatch")
    mask = word_mask(w)
    out = []
    carry = 0
    for x, y in zip(a, b):
        s = x + y + carry
        out.append(s & mask)
        carry = s >> w
    return out, carry


def sub_words(a: list[int], b: list[int], w: int = 32) -> tuple[list[int], int]:
    """Multi-precision subtract; returns (difference words, borrow bit)."""
    if len(a) != len(b):
        raise ValueError("length mismatch")
    mask = word_mask(w)
    out = []
    borrow = 0
    for x, y in zip(a, b):
        d = x - y - borrow
        out.append(d & mask)
        borrow = 1 if d < 0 else 0
    return out, borrow


def xor_words(a: list[int], b: list[int]) -> list[int]:
    """Carry-less (binary field) addition: per-limb XOR."""
    if len(a) != len(b):
        raise ValueError("length mismatch")
    return [x ^ y for x, y in zip(a, b)]


def shift_left_words(a: list[int], bits: int, w: int = 32) -> list[int]:
    """Logical left shift of a limb array (length grows as needed)."""
    value = to_int(a, w) << bits
    k = max(len(a), words_for(value.bit_length() or 1, w))
    return from_int(value, k, w)
