"""Multi-precision binary-field multiplication (paper Section 4.2.2).

Without a carry-less multiplier instruction, software must fall back to
comb-style multiplication with precomputation (Algorithm 6); the paper uses
a window width of w=4 as the RAM/performance sweet spot.  With the MULGF2 /
MADDGF2 ISA extensions (Table 5.2), the same product-scanning structure as
the prime path applies, but over carry-less words.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fields.inversion import _poly_mul
from repro.mp.words import to_int, word_mask


@dataclass
class CombTrace:
    """Structural statistics for one comb multiplication."""

    table_builds: int = 0
    table_lookups: int = 0
    shifts: int = 0
    xors: int = 0


def clmul_word(a: int, b: int, w: int = 32) -> tuple[int, int]:
    """Carry-less w x w multiply -> (hi, lo): the MULGF2 instruction."""
    product = _poly_mul(a, b)
    return (product >> w) & word_mask(w), product & word_mask(w)


def comb_mul(
    a: list[int],
    b: list[int],
    w: int = 32,
    window: int = 4,
    trace: CombTrace | None = None,
) -> list[int]:
    """Left-to-right comb multiplication with windows (Algorithm 6).

    ``a`` supplies the scanned multiplier words, ``b`` the multiplicand.
    A table B_u = u(x)*b(x) for all window-width polynomials u is built
    first (the RAM-for-speed trade the paper describes), then the
    multiplier is scanned ``window`` bits at a time from the top.
    Returns 2k result words.
    """
    k = len(a)
    if len(b) != k:
        raise ValueError("operands must have equal word counts")
    b_val = to_int(b, w)
    table = [0] * (1 << window)
    for u in range(1, 1 << window):
        table[u] = _poly_mul(u, b_val)
        if trace:
            trace.table_builds += 1
    c = 0
    for j in range(w // window - 1, -1, -1):
        for i in range(k):
            u = (a[i] >> (window * j)) & ((1 << window) - 1)
            c ^= table[u] << (w * i)
            if trace:
                trace.table_lookups += 1
                trace.xors += k + 1
        if j:
            c <<= window
            if trace:
                trace.shifts += 2 * k
    mask = word_mask(w)
    return [(c >> (w * i)) & mask for i in range(2 * k)]


def bitserial_clmul(a: list[int], b: list[int], w: int = 32) -> list[int]:
    """Naive bit-serial multiplication (scan the multiplier one bit at a
    time); the paper calls this impractical in software -- kept as the
    reference the comb method is validated against."""
    k = len(a)
    a_val, b_val = to_int(a, w), to_int(b, w)
    c = 0
    shifted = b_val
    for i in range(k * w):
        if (a_val >> i) & 1:
            c ^= shifted
        shifted <<= 1
    mask = word_mask(w)
    return [(c >> (w * i)) & mask for i in range(2 * k)]


def product_scanning_clmul(
    a: list[int], b: list[int], w: int = 32
) -> list[int]:
    """Carry-less product scanning using MADDGF2 (Algorithm 3 over GF(2)).

    The accumulator is only 2 words wide (no carries propagate into a third
    word), which is why the binary inner loop runs as fast as the prime one
    once the ISA extension exists (374 vs 376 cycles for k=6, Section 4.2.2).
    """
    k = len(a)
    if len(b) != k:
        raise ValueError("operands must have equal word counts")
    mask = word_mask(w)
    p = [0] * (2 * k)
    acc = 0
    for i in range(2 * k - 1):
        lo = max(0, i - k + 1)
        hi = min(i, k - 1)
        for j in range(lo, hi + 1):
            acc ^= _poly_mul(a[j], b[i - j])
        p[i] = acc & mask
        acc >>= w
    p[2 * k - 1] = acc & mask
    return p


def digits_of(b: list[int], digit: int, w: int = 32) -> list[int]:
    """Split a limb array into base-2^digit digits, LSB first (used by the
    digit-serial multiplier model in :mod:`repro.accel.digit_serial`)."""
    value = to_int(b, w)
    total_bits = len(b) * w
    n_digits = -(-total_bits // digit)
    mask = (1 << digit) - 1
    return [(value >> (digit * i)) & mask for i in range(n_digits)]
