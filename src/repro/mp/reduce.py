"""Word-level NIST fast reduction (paper Algorithms 4 and 7).

These mirror :mod:`repro.fields.nist` but operate on limb arrays, following
the word/shift structure that the generated assembly kernels implement.
Validated against the integer-level reducers in the test suite.
"""

from __future__ import annotations

from repro.fields.nist import (
    BINARY_TAIL_EXPONENTS,
    NIST_BINARY_POLYS,
    NIST_PRIMES,
    PRIME_REDUCERS,
    reduce_binary,
)
from repro.mp.words import from_int, to_int, words_for


def reduce_words_prime(
    c: list[int], bits: int, w: int = 32
) -> list[int]:
    """Reduce a 2k-word product modulo the NIST prime of ``bits`` bits."""
    if bits not in NIST_PRIMES:
        raise KeyError(f"no NIST prime of {bits} bits")
    value = PRIME_REDUCERS[bits](to_int(c, w))
    return from_int(value, words_for(bits, w), w)


def reduce_words_binary(c: list[int], m: int, w: int = 32) -> list[int]:
    """Reduce a 2k-word polynomial product modulo the NIST field of
    degree ``m`` (word-level Algorithm 7 for B-163 and friends)."""
    if m not in NIST_BINARY_POLYS:
        raise KeyError(f"no NIST binary field of degree {m}")
    value = reduce_binary(to_int(c, w), m)
    return from_int(value, words_for(m, w), w)


def reduce_b163_words(c: list[int], w: int = 32) -> list[int]:
    """Explicit word-level Algorithm 7: fast reduction modulo
    f(x) = x^163 + x^7 + x^6 + x^3 + 1.

    Works on eleven 32-bit input words C[10..0]; folds words 10..6 down,
    then handles the straddling word C[5].  This is the exact shift/XOR
    schedule of the paper's Algorithm 7 and of the ``red_b163`` assembly
    kernel.
    """
    if w != 32:
        raise ValueError("Algorithm 7 is specified for 32-bit words")
    c = list(c) + [0] * (11 - len(c))
    mask = 0xFFFFFFFF
    for i in range(10, 5, -1):
        t = c[i]
        c[i - 6] ^= (t << 29) & mask
        c[i - 5] ^= ((t >> 3) ^ t ^ (t << 3) ^ (t << 4)) & mask
        c[i - 4] ^= ((t >> 28) ^ (t >> 29)) & mask
    t = c[5] >> 3
    c[0] ^= ((t << 7) ^ (t << 6) ^ (t << 3) ^ t) & mask
    c[1] ^= ((t >> 25) ^ (t >> 26)) & mask
    c[5] &= 0x7
    return c[:6]


def reduction_fold_ops(bits_or_m: int, prime: bool) -> int:
    """Approximate number of word operations in one fast reduction.

    Used by the cycle model to extrapolate reduction cost to fields for
    which no explicit kernel was generated: cost scales with (number of
    fold terms) x (words per element), plus per-term shift work for binary
    fields whose terms do not fall on word boundaries.
    """
    if prime:
        from repro.fields.nist import PRIME_FOLD_TERMS

        k = words_for(bits_or_m, 32)
        terms = PRIME_FOLD_TERMS[bits_or_m]
        # each fold term is a k-word add; plus the conditional subtract
        return (terms + 1) * k + 2 * k
    tail = BINARY_TAIL_EXPONENTS[bits_or_m]
    k = words_for(bits_or_m, 32)
    # each tail exponent costs ~2 shifted XOR word ops per folded word
    return len(tail) * 2 * (k + 1) + k
