"""Binary-field squaring (paper Section 4.2.3).

Squaring in GF(2^m) interleaves zero bits between the operand bits, an O(k)
operation.  The software-only system accelerates it with a precomputed
256-entry table mapping each 8-bit polynomial to its 16-bit square; the
ISA-extended system instead squares 32 bits at a time with MULGF2(a, a).
"""

from __future__ import annotations

from repro.mp.words import word_mask


def _expand8(byte: int) -> int:
    """Interleave a zero bit after each of the 8 input bits."""
    out = 0
    for i in range(8):
        if (byte >> i) & 1:
            out |= 1 << (2 * i)
    return out


#: The baseline software's precomputed squaring table: 256 entries of
#: 16-bit squares, scanned 8 bits at a time (costs 512 B of RAM).
SQUARE_TABLE_8BIT: tuple[int, ...] = tuple(_expand8(b) for b in range(256))


def binary_square_words(a: list[int], w: int = 32) -> list[int]:
    """Square a limb array via the 8-bit table (software path).

    Each w-bit word expands into two w-bit result words; the result is 2k
    words long and still needs reduction.
    """
    out = []
    for word in a:
        expanded = 0
        for byte_idx in range(w // 8):
            byte = (word >> (8 * byte_idx)) & 0xFF
            expanded |= SQUARE_TABLE_8BIT[byte] << (16 * byte_idx)
        out.append(expanded & word_mask(w))
        out.append((expanded >> w) & word_mask(w))
    return out


def binary_square_clmul(a: list[int], w: int = 32) -> list[int]:
    """Square via MULGF2(a_i, a_i) one word at a time (ISA-extended path).

    A carry-less self-multiplication has no cross terms, so it equals the
    bit interleave; this replaces the table with k multiplier passes.
    """
    from repro.mp.binary_mul import clmul_word

    out = []
    for word in a:
        hi, lo = clmul_word(word, word, w)
        out.append(lo)
        out.append(hi)
    return out
