"""Word-level multi-precision arithmetic (paper Section 4.2).

Large integers / polynomials are stored as little-endian arrays of w-bit
words ("limbs"), exactly as the paper's C++ software suite stores them in
RAM on Pete.  Every algorithm evaluated by the paper is implemented at the
word level:

* operand-scanning multiplication (Algorithm 2) -- the baseline's choice;
* product-scanning multiplication (Algorithm 3) -- used with the MADDU /
  SHA ISA extensions;
* CIOS Montgomery multiplication (Algorithm 5) -- Monte's microcode;
* FIPS Montgomery multiplication -- evaluated and rejected by the paper;
* Karatsuba word multiplication (Eq. 5.1) -- Pete's multi-cycle multiplier;
* left-to-right comb binary multiplication with width-w windows
  (Algorithm 6) -- the software-only binary path;
* carry-less product scanning -- the MULGF2/MADDGF2 path;
* table-based binary squaring (Section 4.2.3);
* word-level NIST fast reduction for all ten fields.

These are cross-validated against the integer-level :mod:`repro.fields`
layer, and their structure (loop trip counts, memory traffic) is what the
generated assembly kernels in :mod:`repro.kernels` implement on the Pete
simulator.
"""

from repro.mp.words import from_int, to_int, word_mask
from repro.mp.prime_mul import (
    karatsuba_word_mul,
    operand_scanning_mul,
    product_scanning_mul,
)
from repro.mp.montgomery import (
    MontgomeryContext,
    cios_montmul,
    fips_montmul,
)
from repro.mp.binary_mul import (
    bitserial_clmul,
    comb_mul,
    product_scanning_clmul,
)
from repro.mp.binary_sqr import binary_square_words, SQUARE_TABLE_8BIT
from repro.mp.reduce import (
    reduce_words_binary,
    reduce_words_prime,
)

__all__ = [
    "from_int",
    "to_int",
    "word_mask",
    "operand_scanning_mul",
    "product_scanning_mul",
    "karatsuba_word_mul",
    "MontgomeryContext",
    "cios_montmul",
    "fips_montmul",
    "comb_mul",
    "bitserial_clmul",
    "product_scanning_clmul",
    "binary_square_words",
    "SQUARE_TABLE_8BIT",
    "reduce_words_prime",
    "reduce_words_binary",
]
