"""Cross-run regression observability.

Where :mod:`repro.trace` observes one run, this package observes the
repository *across* runs and commits:

* :mod:`repro.regress.ledger` -- append-only JSONL ledger of structured
  run records (``results/ledger/*.jsonl``), fed by ``runall``,
  :class:`~repro.kernels.runner.KernelRunner` and the pytest
  benchmarks;
* :mod:`repro.regress.diff` -- differential profiler: ranked
  per-symbol / per-component deltas between any two records, ledgers or
  profiler dumps;
* :mod:`repro.regress.gate` -- committed baseline snapshot
  (``results/baseline/BASELINE.json``) and the per-quantity-tolerance
  regression gate;
* :mod:`repro.regress.scorecard` -- the paper-fidelity bands evaluated
  into one machine-readable ledger record, reconciling with
  :mod:`repro.harness.compare`.

CLI: ``python -m repro.regress {diff,gate,baseline,scorecard,log}``.

This ``__init__`` stays import-light (the ledger only): the gate and
scorecard pull in the whole simulator stack, so they load lazily.
"""

from __future__ import annotations

from repro.regress.ledger import Ledger, NullLedger, default_ledger

__all__ = [
    "Ledger", "NullLedger", "default_ledger",
    "diff_records", "render_diff", "measure_quantities", "make_baseline",
    "scorecard_record",
]

_LAZY = {
    "diff_records": ("repro.regress.diff", "diff_records"),
    "render_diff": ("repro.regress.diff", "render_diff"),
    "measure_quantities": ("repro.regress.gate", "measure_quantities"),
    "make_baseline": ("repro.regress.gate", "make_baseline"),
    "scorecard_record": ("repro.regress.scorecard", "scorecard_record"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
