"""Differential profiler: what changed between two runs.

Diffs two run records (or the latest records of two ledgers, or two
profiler dumps -- anything in the :mod:`repro.trace.record` schema) and
ranks the deltas by absolute contribution:

* top-level cycles / energy / wall-clock;
* per-symbol cycle / stall / energy deltas, plus symbols that appeared
  or vanished between the runs;
* per-component energy deltas (Pete / ROM / RAM / Uncore / Monte /
  Billie).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Delta:
    """One quantity's change between two runs."""

    name: str
    before: float
    after: float
    unit: str = ""

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def pct(self) -> float | None:
        """Relative change; ``None`` when the before value is zero."""
        if self.before == 0:
            return None
        return 100.0 * (self.after - self.before) / abs(self.before)

    def render(self) -> str:
        pct = f"{self.pct:+.1f}%" if self.pct is not None else "new"
        return (f"{self.name:<28} {self.before:>12.4g} -> "
                f"{self.after:>12.4g} {self.unit:<6} ({pct})")


@dataclass
class SymbolDiff:
    """Per-symbol deltas plus appearance/disappearance lists."""

    changed: list[dict] = field(default_factory=list)
    new: list[dict] = field(default_factory=list)
    vanished: list[dict] = field(default_factory=list)


@dataclass
class RecordDiff:
    """Full differential between two run records."""

    artifact: str
    scalars: list[Delta]
    components: list[Delta]
    symbols: SymbolDiff

    @property
    def empty(self) -> bool:
        return not (any(d.delta for d in self.scalars)
                    or any(d.delta for d in self.components)
                    or self.symbols.changed or self.symbols.new
                    or self.symbols.vanished)


def diff_scalars(a: dict, b: dict) -> list[Delta]:
    out = []
    for key, unit in (("cycles", "cyc"), ("energy_uj", "uJ"),
                      ("wall_s", "s")):
        va, vb = float(a.get(key) or 0), float(b.get(key) or 0)
        if va or vb:
            out.append(Delta(key, va, vb, unit))
    return out


def diff_components(a: dict, b: dict) -> list[Delta]:
    """Per-component energy deltas, ranked by absolute contribution."""
    ca = a.get("components") or {}
    cb = b.get("components") or {}
    out = [Delta(name, float(ca.get(name, 0.0)), float(cb.get(name, 0.0)),
                 "uJ")
           for name in sorted(set(ca) | set(cb))]
    return sorted((d for d in out if d.delta), key=lambda d: -abs(d.delta))


def diff_symbols(a: dict, b: dict) -> SymbolDiff:
    """Per-symbol deltas, ranked by absolute cycle contribution."""
    rows_a = {r["symbol"]: r for r in a.get("symbols") or []}
    rows_b = {r["symbol"]: r for r in b.get("symbols") or []}
    diff = SymbolDiff()
    for name in set(rows_a) | set(rows_b):
        ra, rb = rows_a.get(name), rows_b.get(name)
        if ra is None:
            diff.new.append(rb)
        elif rb is None:
            diff.vanished.append(ra)
        else:
            row = {"symbol": name}
            for key in ("cycles", "instructions", "stall_cycles", "uj"):
                row[key] = (float(rb.get(key, 0) or 0)
                            - float(ra.get(key, 0) or 0))
            if any(row[k] for k in
                   ("cycles", "instructions", "stall_cycles", "uj")):
                diff.changed.append(row)
    diff.changed.sort(key=lambda r: (-abs(r["cycles"]), -abs(r["uj"])))
    diff.new.sort(key=lambda r: -float(r.get("cycles", 0) or 0))
    diff.vanished.sort(key=lambda r: -float(r.get("cycles", 0) or 0))
    return diff


def diff_records(a: dict, b: dict) -> RecordDiff:
    return RecordDiff(
        artifact=b.get("artifact") or a.get("artifact") or "?",
        scalars=diff_scalars(a, b),
        components=diff_components(a, b),
        symbols=diff_symbols(a, b))


def diff_ledgers(records_a: list[dict], records_b: list[dict]
                 ) -> tuple[list[RecordDiff], list[str], list[str]]:
    """Diff the latest record per artifact of two record lists.

    Returns ``(diffs, only_in_a, only_in_b)``.
    """
    latest_a = {r.get("artifact", "?"): r for r in records_a}
    latest_b = {r.get("artifact", "?"): r for r in records_b}
    shared = sorted(set(latest_a) & set(latest_b))
    diffs = [diff_records(latest_a[name], latest_b[name]) for name in shared]
    return (diffs, sorted(set(latest_a) - set(latest_b)),
            sorted(set(latest_b) - set(latest_a)))


def _provenance(record: dict) -> str:
    sha = (record.get("git_sha") or "unknown")[:12]
    dirty = record.get("git_dirty")
    suffix = "+dirty" if dirty else ("" if dirty is False else "?")
    return f"{sha}{suffix}"


def render_diff(diff: RecordDiff, a: dict | None = None,
                b: dict | None = None, top: int = 15) -> str:
    """Human-readable differential report for one artifact."""
    lines = [f"== {diff.artifact}"
             + (f"  [{_provenance(a)} -> {_provenance(b)}]"
                if a and b else "")]
    if diff.empty:
        lines.append("  (no change)")
        return "\n".join(lines)
    for d in diff.scalars:
        if d.delta:
            lines.append("  " + d.render())
    if diff.components:
        lines.append("  components (by |delta uJ|):")
        for d in diff.components[:top]:
            lines.append("    " + d.render())
    sym = diff.symbols
    if sym.changed or sym.new or sym.vanished:
        lines.append("  symbols (by |delta cycles|):")
        for row in sym.changed[:top]:
            lines.append(
                f"    {row['symbol']:<24} {row['cycles']:>+10.0f} cyc "
                f"{row['stall_cycles']:>+8.0f} stall "
                f"{row['uj']:>+10.4f} uJ")
        for row in sym.new[:top]:
            lines.append(f"    NEW  {row['symbol']:<20} "
                         f"{float(row.get('cycles', 0) or 0):>9.0f} cyc")
        for row in sym.vanished[:top]:
            lines.append(f"    GONE {row['symbol']:<20} "
                         f"{float(row.get('cycles', 0) or 0):>9.0f} cyc")
    return "\n".join(lines)
