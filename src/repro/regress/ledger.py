"""Append-only cross-run ledger: ``results/ledger/<kind>.jsonl``.

One line per run record (:mod:`repro.trace.record` schema), sharded by
record kind (``bench.jsonl``, ``profile.jsonl``, ``scorecard.jsonl``,
``gate.jsonl``).  The ledger is the repository's performance history:
``runall --out``, :class:`~repro.kernels.runner.KernelRunner`, the
pytest benchmarks and the fidelity scorecard all append to it, and
``python -m repro.regress diff`` reads it back to answer *which symbol
got slower between these two runs*.

The reader is migration tolerant (old schema lines are upgraded via
:func:`repro.trace.record.upgrade_record`) and skips blank lines, so a
ledger survives schema bumps and interrupted appends.
"""

from __future__ import annotations

import json
import os

from repro.trace.record import repo_root, upgrade_record

#: Environment switches: explicit directory wins; REPRO_LEDGER=1 turns
#: the default (repo-root) ledger on for emitters that are off in unit
#: tests (KernelRunner).
ENV_DIR = "REPRO_LEDGER_DIR"
ENV_ENABLE = "REPRO_LEDGER"


def default_ledger_dir() -> str:
    return os.environ.get(ENV_DIR,
                          os.path.join(repo_root(), "results", "ledger"))


class Ledger:
    """Append/read interface over one ledger directory."""

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = str(directory) if directory else default_ledger_dir()

    def path_for(self, kind: str) -> str:
        return os.path.join(self.directory, f"{kind}.jsonl")

    def append(self, record: dict) -> str:
        """Append one record as a JSON line; returns the file path."""
        kind = record.get("kind", "bench")
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(kind)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return path

    def read(self, kind: str = "bench") -> list[dict]:
        """All records of one kind, oldest first, schema-upgraded."""
        path = self.path_for(kind)
        if not os.path.exists(path):
            return []
        records = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(upgrade_record(json.loads(line)))
        return records

    def latest(self, artifact: str, kind: str = "bench") -> dict | None:
        """Most recent record of ``artifact``, or ``None``."""
        for record in reversed(self.read(kind)):
            if record.get("artifact") == artifact:
                return record
        return None

    def latest_by_artifact(self, kind: str = "bench") -> dict[str, dict]:
        """``{artifact: most recent record}`` for one kind."""
        out: dict[str, dict] = {}
        for record in self.read(kind):
            out[record.get("artifact", "?")] = record
        return out


class NullLedger:
    """Disabled ledger: appends go nowhere, reads are empty."""

    directory = None

    def append(self, record: dict) -> None:
        return None

    def read(self, kind: str = "bench") -> list[dict]:
        return []

    def latest(self, artifact: str, kind: str = "bench") -> None:
        return None

    def latest_by_artifact(self, kind: str = "bench") -> dict:
        return {}


def default_ledger() -> Ledger | NullLedger:
    """The ledger implicit emitters use.

    Enabled when ``$REPRO_LEDGER_DIR`` names a directory or
    ``$REPRO_LEDGER`` is truthy; otherwise a :class:`NullLedger`, so
    unit tests and casual library use never touch the filesystem.
    """
    if os.environ.get(ENV_DIR):
        return Ledger(os.environ[ENV_DIR])
    if os.environ.get(ENV_ENABLE, "").lower() not in ("", "0", "false", "no"):
        return Ledger()
    return NullLedger()


def load_any(path: str) -> list[dict]:
    """Read a record source: a single ``*.json`` record or a ``*.jsonl``
    ledger shard.  Always returns a list (len 1 for single records)."""
    if path.endswith(".jsonl"):
        records = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(upgrade_record(json.loads(line)))
        return records
    with open(path, encoding="utf-8") as fh:
        return [upgrade_record(json.load(fh))]
