"""Baseline snapshot + regression gate.

``python -m repro.regress baseline`` measures a catalog of cycle and
energy quantities -- kernel cycle counts on the Pete simulator, static
cycle bounds from the whole-program analyzer
(:mod:`repro.analysis.bounds`) and the whole-primitive model
quantities from
:meth:`repro.model.system.SystemModel.snapshot` -- and freezes them,
with per-quantity tolerances, into ``results/baseline/BASELINE.json``
(committed, regenerated via ``make baseline``).

``python -m repro.regress gate`` re-measures the working tree and fails
loudly, naming every offending quantity, when anything drifts outside
its tolerance.  Cycle counts are deterministic simulator outputs, so
their tolerance is exact; energies allow a float round-trip epsilon.
``--smoke`` restricts measurement to a CI-sized subset.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.trace.record import (
    bench_record,
    git_dirty,
    git_sha,
    repo_root,
)

BASELINE_SCHEMA = "repro.baseline.v1"

#: Exact for deterministic cycle counts; a round-trip epsilon for
#: energies (pure-python floats are reproducible, JSON round-trips are
#: exact, but derived sums may be re-associated by future refactors).
TOLERANCE = {"cycles": 0.0, "instructions": 0.0, "uj": 1e-6}

#: (kernel, k) pairs measured by the gate.  The smoke subset covers one
#: kernel per family and runs in CI seconds.
SMOKE_KERNELS: tuple[tuple[str, int], ...] = (
    ("os_mul", 8), ("ps_mul_ext", 6), ("ps_mulgf2", 6), ("comb_mul", 6),
    ("red_p192", 6), ("red_b163", 6), ("speck64", 1),
)
FULL_KERNELS: tuple[tuple[str, int], ...] = SMOKE_KERNELS + (
    ("mp_add", 6), ("mp_sub", 6), ("ps_sqr_ext", 6), ("bsqr_table", 6),
    ("bsqr_ext", 6), ("scalar_daa", 8), ("scalar_ladder", 8),
    ("fmul_p192", 6), ("fmul_b163", 6),
)

#: Kernels whose *static* cycle bound (the abstract interpreter's
#: longest-path cost, :mod:`repro.analysis.bounds`) the gate freezes in
#: the smoke subset; the full set is the whole analysis registry.
#: Bounds are deterministic analyzer outputs, so their tolerance is
#: exact -- a drifting bound means the analyzer or a kernel changed.
SMOKE_ANALYSIS: tuple[str, ...] = (
    "os_mul", "red_p192", "comb_mul", "speck64",
)

#: (curve, config) model rows.  The smoke subset exercises the software,
#: Monte and binary paths once each; the full set is every row of the
#: paper's Tables 7.1/7.2.
SMOKE_MODEL: tuple[tuple[str, str], ...] = (
    ("P-192", "baseline"), ("P-192", "monte"), ("B-163", "binary_isa"),
)


def full_model_rows() -> tuple[tuple[str, str], ...]:
    from repro.harness.registry import model_rows

    return model_rows()


def default_baseline_path() -> str:
    return os.path.join(repo_root(), "results", "baseline", "BASELINE.json")


def measure_quantities(smoke: bool = False, runner=None, model=None
                       ) -> dict[str, float | None]:
    """Measure the gate catalog; keys are stable quantity names like
    ``kernel/os_mul:8/cycles`` and ``model/P-192:baseline/energy_uj``.

    A quantity whose measurement raises (kernel deleted, config gone)
    maps to ``None`` rather than crashing, so :func:`check` can report
    it as vanished instead of the gate dying mid-run.
    """
    from repro.kernels.runner import shared_runner
    from repro.model.system import SystemModel

    runner = runner or shared_runner()
    model = model or SystemModel()
    out: dict[str, float | None] = {}
    for name, k in (SMOKE_KERNELS if smoke else FULL_KERNELS):
        try:
            result = runner.measure(name, k)
            cycles: float | None = float(result.cycles)
            instrs: float | None = float(result.instructions)
        except Exception:
            cycles = instrs = None
        out[f"kernel/{name}:{k}/cycles"] = cycles
        out[f"kernel/{name}:{k}/instructions"] = instrs
    from repro.analysis.bounds import compute_bound
    from repro.analysis.registry import KERNELS as ANALYSIS_KERNELS
    from repro.analysis.verify import analyze_spec

    for spec in ANALYSIS_KERNELS:
        if smoke and spec.name not in SMOKE_ANALYSIS:
            continue
        try:
            _, result = analyze_spec(spec)
            br = compute_bound(result)
            bound = float(br.total.cycles) if br.certified else None
        except Exception:
            bound = None
        out[f"analysis/{spec.name}:{spec.measure_k}/bound_cycles"] = bound
    for curve, config in (SMOKE_MODEL if smoke else full_model_rows()):
        base = f"model/{curve}:{config}"
        try:
            snap = model.snapshot(curve, config)
        except Exception:
            for quantity in ("sign_cycles", "verify_cycles", "energy_uj"):
                out[f"{base}/{quantity}"] = None
            continue
        out[f"{base}/sign_cycles"] = snap["sign_cycles"]
        out[f"{base}/verify_cycles"] = snap["verify_cycles"]
        out[f"{base}/energy_uj"] = snap["energy_uj"]
        for comp, uj in snap["components"].items():
            out[f"{base}/component:{comp}_uj"] = uj
    return out


def _tolerance_for(name: str) -> float:
    unit = name.rsplit("/", 1)[-1]
    if unit.endswith("uj"):
        return TOLERANCE["uj"]
    return TOLERANCE.get(unit.rsplit("_", 1)[-1], TOLERANCE["uj"])


def make_baseline(smoke: bool = False, runner=None, model=None) -> dict:
    """Freeze the current tree's measurements into a baseline snapshot."""
    measured = measure_quantities(smoke=smoke, runner=runner, model=model)
    broken = sorted(name for name, v in measured.items() if v is None)
    if broken:
        raise RuntimeError("cannot freeze a baseline with unmeasurable "
                           "quantities: " + " ".join(broken))
    return {
        "schema": BASELINE_SCHEMA,
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "smoke": smoke,
        "quantities": {name: {"value": value,
                              "tolerance": _tolerance_for(name)}
                       for name, value in sorted(measured.items())},
    }


def write_baseline(baseline: dict, path: str | None = None) -> str:
    path = path or default_baseline_path()
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_baseline(path: str | None = None) -> dict:
    path = path or default_baseline_path()
    with open(path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"unknown baseline schema "
                         f"{baseline.get('schema')!r} in {path}")
    return baseline


@dataclass(frozen=True)
class GateFailure:
    """One quantity outside its tolerance."""

    name: str
    baseline: float
    measured: float | None
    tolerance: float

    def render(self) -> str:
        if self.measured is None:
            return (f"FAIL {self.name}: present in the baseline but no "
                    f"longer measurable (kernel or config removed?)")
        if self.baseline:
            pct = 100.0 * (self.measured / self.baseline - 1.0)
            change = f"{pct:+.2f}%"
        else:
            change = "was 0"
        return (f"FAIL {self.name}: baseline {self.baseline:g}, "
                f"measured {self.measured:g} ({change}, tolerance "
                f"{100 * self.tolerance:g}%)")


def check(baseline: dict, measured: dict[str, float]) -> list[GateFailure]:
    """Compare measurements against the baseline's quantities.

    Only quantities present in *both* are numerically compared (so a
    smoke run can gate against a full baseline); baseline quantities the
    current measurement set should contain but doesn't fail loudly.
    """
    failures = []
    for name, entry in sorted(baseline["quantities"].items()):
        if name not in measured:
            continue
        value, tol = entry["value"], entry.get("tolerance", 0.0)
        got = measured[name]
        if got is None:
            failures.append(GateFailure(name, value, None, tol))
            continue
        if value == 0:
            ok = got == 0
        else:
            ok = abs(got / value - 1.0) <= tol
        if not ok:
            failures.append(GateFailure(name, value, got, tol))
    return failures


def render_report(baseline: dict, measured: dict[str, float],
                  failures: list[GateFailure]) -> str:
    checked = sum(1 for n in baseline["quantities"] if n in measured)
    lines = [
        "repro.regress gate: working tree vs committed baseline",
        f"  baseline: {baseline.get('git_sha', 'unknown')[:12]}"
        + (" (dirty tree!)" if baseline.get("git_dirty") else ""),
        f"  current:  {git_sha()[:12]}"
        + (" (dirty tree)" if git_dirty() else ""),
        f"  {checked} quantities checked, {len(failures)} out of "
        f"tolerance",
    ]
    if failures:
        lines.append("")
        lines.extend(f.render() for f in failures)
        lines.append("")
        lines.append(
            "A FAILed cycle count means a generated kernel, the Pete "
            "core, or a coprocessor timing model changed behaviour; a "
            "FAILed energy means the activity synthesis or calibration "
            "moved.  If the change is intended, regenerate the snapshot "
            "with `make baseline` and commit it alongside the change.")
    else:
        lines.append("  ok: no regressions against the baseline")
    return "\n".join(lines)


def gate_record(baseline: dict, measured: dict[str, float],
                failures: list[GateFailure], smoke: bool = False) -> dict:
    """Ledger record of one gate evaluation."""
    return bench_record(
        "regress-gate", kind="gate",
        config="smoke" if smoke else "full",
        data={
            "baseline_sha": baseline.get("git_sha"),
            "checked": sum(1 for n in baseline["quantities"]
                           if n in measured),
            "failed": len(failures),
            "failures": [{"name": f.name, "baseline": f.baseline,
                          "measured": f.measured,
                          "tolerance": f.tolerance} for f in failures],
        })
