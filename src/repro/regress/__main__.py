"""Cross-run regression CLI: ``python -m repro.regress <subcommand>``.

* ``diff A B`` -- differential report between two run records
  (``BENCH_*.json`` / profiler dumps) or two ledger shards (``*.jsonl``,
  latest record per artifact): ranked per-symbol and per-component
  deltas, new/vanished symbols;
* ``gate [--smoke]`` -- re-measure the working tree against the
  committed ``results/baseline/BASELINE.json``; non-zero exit naming
  every out-of-tolerance quantity;
* ``baseline [--smoke]`` -- regenerate the baseline snapshot
  (``make baseline``);
* ``scorecard`` -- evaluate the paper-fidelity bands into one ledger
  record, reconciling with ``python -m repro.harness.compare``;
* ``log`` -- tail the ledger.
"""

from __future__ import annotations

import argparse
import sys

from repro.regress.ledger import Ledger, NullLedger, load_any


def _cmd_diff(args) -> int:
    from repro.regress.diff import diff_ledgers, diff_records, render_diff

    a = load_any(args.a)
    b = load_any(args.b)
    if len(a) == 1 and len(b) == 1:
        print(render_diff(diff_records(a[0], b[0]), a[0], b[0],
                          top=args.top))
        return 0
    latest_a = {r.get("artifact", "?"): r for r in a}
    latest_b = {r.get("artifact", "?"): r for r in b}
    diffs, only_a, only_b = diff_ledgers(a, b)
    for diff in diffs:
        if diff.empty and not args.all:
            continue
        print(render_diff(diff, latest_a.get(diff.artifact),
                          latest_b.get(diff.artifact), top=args.top))
        print()
    unchanged = sum(1 for d in diffs if d.empty)
    if unchanged and not args.all:
        print(f"({unchanged} artifacts unchanged; --all shows them)")
    if only_a:
        print(f"only in {args.a}: {' '.join(only_a)}")
    if only_b:
        print(f"only in {args.b}: {' '.join(only_b)}")
    return 0


def _ledger_for(args) -> Ledger | NullLedger:
    if getattr(args, "no_ledger", False):
        return NullLedger()
    return Ledger(args.ledger) if args.ledger else Ledger()


def _cmd_gate(args) -> int:
    from repro.regress import gate

    try:
        baseline = gate.load_baseline(args.baseline)
    except FileNotFoundError:
        print(f"regress gate: no baseline snapshot at "
              f"{args.baseline or gate.default_baseline_path()}; "
              f"generate one with `make baseline`", file=sys.stderr)
        return 2
    measured = gate.measure_quantities(smoke=args.smoke)
    failures = gate.check(baseline, measured)
    report = gate.render_report(baseline, measured, failures)
    print(report)
    if args.report:
        import os

        os.makedirs(os.path.dirname(os.path.abspath(args.report)),
                    exist_ok=True)
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    _ledger_for(args).append(
        gate.gate_record(baseline, measured, failures, smoke=args.smoke))
    return 1 if failures else 0


def _cmd_baseline(args) -> int:
    from repro.regress import gate

    baseline = gate.make_baseline(smoke=args.smoke)
    path = gate.write_baseline(baseline, args.baseline)
    print(f"wrote {len(baseline['quantities'])} quantities to {path}")
    if baseline.get("git_dirty"):
        print("warning: baseline captured from a dirty working tree",
              file=sys.stderr)
    return 0


def _cmd_scorecard(args) -> int:
    from repro.regress.scorecard import render_scorecard, scorecard_record

    record = scorecard_record()
    print(render_scorecard(record))
    _ledger_for(args).append(record)
    return 1 if args.strict and record["data"]["failed"] else 0


def _cmd_log(args) -> int:
    ledger = Ledger(args.ledger) if args.ledger else Ledger()
    records = ledger.read(args.kind)
    for record in records[-args.n:]:
        dirty = "+dirty" if record.get("git_dirty") else ""
        print(f"{record.get('timestamp', '?'):>24} "
              f"{record.get('git_sha', 'unknown')[:12]}{dirty:<7} "
              f"{record.get('artifact', '?'):<28} "
              f"cycles={record.get('cycles', 0):<12g} "
              f"uJ={record.get('energy_uj', 0):<10g} "
              f"{record.get('config', '')}")
    if not records:
        print(f"(no {args.kind} records in {ledger.directory})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.regress",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("diff", help="diff two records or ledgers")
    p.add_argument("a", help="record .json or ledger .jsonl (before)")
    p.add_argument("b", help="record .json or ledger .jsonl (after)")
    p.add_argument("--top", type=int, default=15,
                   help="rows per ranking (default 15)")
    p.add_argument("--all", action="store_true",
                   help="also print unchanged artifacts")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("gate", help="gate the tree against the baseline")
    p.add_argument("--baseline", default=None,
                   help="snapshot path (default results/baseline/"
                        "BASELINE.json)")
    p.add_argument("--smoke", action="store_true",
                   help="measure only the CI smoke subset")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="also write the report to FILE")
    p.add_argument("--ledger", default=None,
                   help="ledger directory (default results/ledger)")
    p.add_argument("--no-ledger", action="store_true",
                   help="do not append a gate record to the ledger")
    p.set_defaults(func=_cmd_gate)

    p = sub.add_parser("baseline", help="regenerate the baseline snapshot")
    p.add_argument("--baseline", default=None, help="output path")
    p.add_argument("--smoke", action="store_true",
                   help="freeze only the smoke subset")
    p.set_defaults(func=_cmd_baseline)

    p = sub.add_parser("scorecard",
                       help="evaluate the paper-fidelity scorecard")
    p.add_argument("--strict", action="store_true",
                   help="non-zero exit when any band fails")
    p.add_argument("--ledger", default=None,
                   help="ledger directory (default results/ledger)")
    p.add_argument("--no-ledger", action="store_true",
                   help="do not append the record to the ledger")
    p.set_defaults(func=_cmd_scorecard)

    p = sub.add_parser("log", help="tail the ledger")
    p.add_argument("--kind", default="bench",
                   choices=("bench", "profile", "scorecard", "gate",
                            "sweep"))
    p.add_argument("-n", type=int, default=20)
    p.add_argument("--ledger", default=None)
    p.set_defaults(func=_cmd_log)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
