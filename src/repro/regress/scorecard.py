"""Fidelity scorecard: the paper bands as one machine-readable record.

Evaluates every quantity the reproduction gate
(:mod:`repro.harness.compare`) tracks -- latency-table rows, kernel and
FFAU anchors, headline factor bands -- via the *same*
:func:`~repro.harness.compare.all_rows` call the gate itself uses, so
the scorecard's pass/fail verdicts reconcile with ``python -m
repro.harness.compare`` by construction.  The resulting record is
appended to the ledger (``results/ledger/scorecard.jsonl``), turning
paper-fidelity drift into a time series instead of a surprise gate
failure.
"""

from __future__ import annotations

from repro.harness.compare import all_rows
from repro.trace.record import bench_record


def scorecard_rows(model=None) -> list[dict]:
    """Every tracked quantity as a serializable row."""
    comparisons, bands = all_rows(model)
    rows = []
    for c in comparisons:
        rows.append({
            "name": c.name, "type": "ratio", "measured": c.measured,
            "reference": c.reference, "tolerance": c.tolerance,
            "ok": c.ok, "note": c.note,
        })
    for b in bands:
        rows.append({
            "name": b.name, "type": "band", "measured": b.measured,
            "low": b.low, "high": b.high, "ok": b.ok, "note": b.note,
        })
    return rows


def scorecard_record(model=None) -> dict:
    """One ledger record scoring the whole reproduction."""
    rows = scorecard_rows(model)
    passed = sum(1 for r in rows if r["ok"])
    failed = len(rows) - passed
    return bench_record(
        "fidelity-scorecard", kind="scorecard",
        config=f"{passed}/{len(rows)} ok",
        data={"passed": passed, "failed": failed, "rows": rows})


def render_scorecard(record: dict) -> str:
    data = record["data"]
    lines = [f"fidelity scorecard @ {record['git_sha'][:12]}"
             + ("+dirty" if record.get("git_dirty") else "")
             + f": {data['passed']} ok, {data['failed']} failed"]
    for row in data["rows"]:
        status = "ok " if row["ok"] else "FAIL"
        if row["type"] == "ratio":
            bound = (f"vs {row['reference']:10.2f} "
                     f"(tol {row['tolerance']:.0%})")
        else:
            bound = f"in [{row['low']:.2f}, {row['high']:.2f}]"
        note = f"  [{row['note']}]" if row.get("note") else ""
        lines.append(f"[{status}] {row['name']:<42} "
                     f"{row['measured']:10.2f} {bound}{note}")
    return "\n".join(lines)
