"""Regenerate every table and figure: ``python -m repro.harness.runall``.

Writes the rendered artifacts to stdout and, with ``--out DIR``, one text
file per artifact into the given directory (``--csv`` adds machine-
readable CSV next to each text file).  Artifact selection, production
and rendering all go through :mod:`repro.harness.registry`; execution
goes through the sweep engine (:mod:`repro.sweep`), so ``--jobs N``
parallelizes the run and ``--cache`` memoizes artifact results on disk
keyed by producing-code content + calibration + params (a warm rerun
touches zero simulators).

Observability modes (instead of rendering artifacts):

* ``--profile [CURVE:CONFIG:PRIMITIVE]`` -- per-operation cycle/energy
  profile of one full primitive (default ``P-256:baseline:sign``),
  reconciled against its :class:`EnergyReport`;
* ``--profile-kernel NAME:K`` -- cycle-level per-symbol profile of one
  assembled kernel run (hot-spot table + collapsed stacks);
* ``--trace FILE [--trace-kernel NAME:K]`` -- run one kernel with
  tracing on and write a Chrome ``trace_event`` JSON (open in Perfetto
  or chrome://tracing).

``--obs`` (with artifact runs) additionally switches on the
:mod:`repro.obs` telemetry plane: hierarchical wall-clock spans across
the run and every pool worker plus cache/fastpath/task metrics,
exported under ``--obs-out`` (default ``results/telemetry``) and
summarized in a ``kind="telemetry"`` ledger record -- inspect with
``python -m repro.obs report``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.harness.registry import (
    ArtifactSpec,
    UnknownArtifactError,
    select,
)

DEFAULT_PROFILE = "P-256:baseline:sign"
DEFAULT_TRACE_KERNEL = "os_mul:8"


def select_specs(only: list[str] | None) -> list[ArtifactSpec]:
    """Resolve ``--only`` tokens to specs, in artifact order; raises
    ``SystemExit`` on tokens matching nothing."""
    try:
        return select(only)
    except UnknownArtifactError as exc:
        raise SystemExit(str(exc))


def select_artifacts(only: list[str] | None) -> list[tuple[str, str]]:
    """Resolve ``--only`` tokens to (kind, name) pairs, in artifact
    order; raises ``SystemExit`` on tokens matching nothing."""
    return [spec.key for spec in select_specs(only)]


def _parse_spec(spec: str, default: str, n: int, what: str) -> list[str]:
    parts = (spec or default).split(":")
    if len(parts) != n:
        raise SystemExit(f"runall: bad {what} spec {spec!r} "
                         f"(expected {n} ':'-separated fields, "
                         f"like {default!r})")
    return parts


def _run_profile(spec: str) -> None:
    from repro.trace.opprofile import profile_primitive

    curve, config, primitive = _parse_spec(spec, DEFAULT_PROFILE, 3,
                                           "--profile")
    profile = profile_primitive(curve, config, primitive)
    print(profile.table())
    print(f"\nreconciliation vs EnergyReport: "
          f"{100 * profile.reconcile():.4f}% difference")


def _kernel_profile(spec: str):
    from repro.kernels.runner import KernelRunner
    from repro.trace.bus import CollectingSink
    from repro.trace.metrics import PowerSampler

    name, k = _parse_spec(spec, DEFAULT_TRACE_KERNEL, 2,
                          "--profile-kernel/--trace-kernel")
    events = CollectingSink()
    power = PowerSampler(interval_cycles=64)
    runner = KernelRunner()
    try:
        profiler, cpu = runner.profile(name, int(k),
                                       extra_sinks=(events, power))
    except KeyError as exc:
        raise SystemExit(f"runall: {exc.args[0]}")
    return profiler, cpu, events, power


def _run_kernel_profile(spec: str, dump: pathlib.Path | None = None) -> None:
    profiler, cpu, _, _ = _kernel_profile(spec)
    if dump is not None:
        import json

        record = profiler.to_record(
            f"kernel:{(spec or DEFAULT_TRACE_KERNEL).split(':')[0]}",
            config=spec or DEFAULT_TRACE_KERNEL)
        dump.parent.mkdir(parents=True, exist_ok=True)
        dump.write_text(json.dumps(record, indent=2, sort_keys=True)
                        + "\n")
        print(f"wrote profile dump to {dump}")
    print(profiler.table(top=20))
    diff = profiler.reconcile(cpu.stats)
    print(f"\nreconciliation vs EnergyReport: {100 * diff:.4f}% "
          f"difference")
    stacks = profiler.collapsed_stacks()
    if stacks:
        print("\ncollapsed stacks (flamegraph input):")
        print(stacks)


def _run_batch(lanes: int, kernel_specs: list[str]) -> None:
    from repro.pete.lanes import HAVE_NUMPY

    if not HAVE_NUMPY:
        raise SystemExit("runall: --batch requires numpy")
    from repro.api import BatchItem, compute_batch

    items = []
    for spec in kernel_specs:
        name, k = _parse_spec(spec, DEFAULT_TRACE_KERNEL, 2,
                              "--kernels")
        items.extend(BatchItem(name, "kernel", int(k))
                     for _ in range(lanes))
    result = compute_batch(items)
    groups: dict[tuple[str, int], list] = {}
    for lane in result.lanes:
        if not lane.ok:
            raise SystemExit(f"runall: batch lane "
                             f"{lane.item.label} failed: {lane.error}")
        payload = lane.payload
        groups.setdefault((payload["kernel"], payload["k"]),
                          []).append(lane)
    print(f"batch execution: {lanes} lane(s) per kernel")
    for (name, k), group in groups.items():
        wall = sum(lane.wall_s for lane in group)
        cyc = [lane.payload["cycles"] for lane in group]
        rate = len(group) / wall if wall > 0 else float("inf")
        print(f"  {name}:{k}  lanes={len(group)}  "
              f"cycles[min/mean/max]={min(cyc)}/"
              f"{sum(cyc) // len(cyc)}/{max(cyc)}  "
              f"wall={wall * 1e3:.2f} ms  rate={rate:,.0f} lanes/s")
    counters = result.stats.get("lane_engine") or {}
    shown = {key: value for key, value in sorted(counters.items())
             if value}
    if shown:
        print("  engine: " + ", ".join(f"{key}={value}"
                                       for key, value in shown.items()))


def _run_trace(path: pathlib.Path, spec: str) -> None:
    from repro.trace.chrome import write_chrome_trace

    profiler, cpu, events, power = _kernel_profile(spec)
    write_chrome_trace(
        path, events.events, symbols=profiler.symbols,
        power_series=power.power_series(),
        metadata={"kernel": spec or DEFAULT_TRACE_KERNEL,
                  "cycles": cpu.stats.cycles})
    print(f"wrote {len(events.events)} events to {path} "
          f"({cpu.stats.cycles} cycles simulated)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to write per-artifact text files")
    parser.add_argument("--only", nargs="*", default=None,
                        help="artifact names or prefixes "
                             "(e.g. 7.1 7_14 s7; unknown names fail)")
    parser.add_argument("--csv", action="store_true",
                        help="also write CSV files (requires --out)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="artifact tasks to run in parallel "
                             "(default 1: inline, no process pool)")
    parser.add_argument("--cache", action="store_true",
                        help="memoize artifact results in the on-disk "
                             "content-addressed cache")
    parser.add_argument("--cache-dir", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="cache directory (implies --cache; default "
                             "results/cache or $REPRO_SWEEP_CACHE_DIR)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task timeout for pooled runs "
                             "(default 600)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retries per failed task (default 1)")
    parser.add_argument("--fast", action="store_true",
                        help="run kernel simulations on the superblock "
                             "fast path (repro.pete.fastpath); output "
                             "is byte-identical, only wall-clock "
                             "changes (sets $REPRO_PETE_FAST for "
                             "worker processes)")
    parser.add_argument("--stats-json", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="write run statistics as JSON "
                             '({"computed": N, "cached": N, ...}) for '
                             "machine consumption (CI asserts on these "
                             "fields instead of grepping stderr)")
    parser.add_argument("--profile", nargs="?", const=DEFAULT_PROFILE,
                        metavar="CURVE:CONFIG:PRIMITIVE",
                        help="print the per-operation energy profile of "
                             f"one primitive (default {DEFAULT_PROFILE})")
    parser.add_argument("--profile-kernel", metavar="NAME:K",
                        help="print the per-symbol profile of one "
                             "kernel run (e.g. os_mul:8)")
    parser.add_argument("--profile-json", type=pathlib.Path,
                        metavar="FILE",
                        help="with --profile-kernel: also write the "
                             "profile as a run record (diffable with "
                             "`python -m repro.regress diff`)")
    parser.add_argument("--ledger", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="ledger directory for per-artifact records "
                             "(default: LEDGER under --out)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="with --out: skip the ledger records")
    parser.add_argument("--trace", type=pathlib.Path, metavar="FILE",
                        help="write a Chrome trace_event JSON of one "
                             "kernel run")
    parser.add_argument("--trace-kernel", default=DEFAULT_TRACE_KERNEL,
                        metavar="NAME:K",
                        help="kernel for --trace "
                             f"(default {DEFAULT_TRACE_KERNEL})")
    parser.add_argument("--obs", action="store_true",
                        help="enable the telemetry plane (repro.obs): "
                             "spans + runtime metrics across the run "
                             "and its pool workers, exported as "
                             "JSON/OpenMetrics/Chrome trace plus a "
                             "kind=telemetry ledger record")
    parser.add_argument("--obs-out", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="telemetry export directory (implies "
                             "--obs; default results/telemetry or "
                             "$REPRO_OBS_DIR)")
    parser.add_argument("--batch", type=int, default=None,
                        metavar="LANES",
                        help="instead of rendering artifacts, run the "
                             "kernels named by --kernels lock-step on "
                             "the numpy lane engine, LANES instances "
                             "each, and print a throughput summary "
                             "(requires numpy)")
    parser.add_argument("--kernels", nargs="+", default=None,
                        metavar="NAME:K",
                        help="kernel instances for --batch (default "
                             f"{DEFAULT_TRACE_KERNEL})")
    args = parser.parse_args(argv)

    if args.fast:
        # before any kernel is measured: the process-wide shared runner
        # reads the gate when it is first constructed
        import os

        os.environ["REPRO_PETE_FAST"] = "1"

    if args.profile or args.profile_kernel or args.trace:
        if args.profile:
            _run_profile(args.profile)
        if args.profile_kernel:
            _run_kernel_profile(args.profile_kernel, args.profile_json)
        if args.trace:
            _run_trace(args.trace, args.trace_kernel)
        return 0

    if args.batch is not None:
        if args.batch < 1:
            raise SystemExit("runall: --batch LANES must be >= 1")
        _run_batch(args.batch, args.kernels or [DEFAULT_TRACE_KERNEL])
        return 0

    root = None
    if args.obs or args.obs_out is not None:
        from repro import obs

        tel = obs.enable()
        root = tel.begin("runall", activate=True, jobs=str(args.jobs),
                         fast="1" if args.fast else "0")

    ledger = None
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
        if not args.no_ledger:
            from repro.regress.ledger import Ledger

            ledger = Ledger(args.ledger or args.out / "ledger")

    specs = select_specs(args.only)

    cache = None
    if args.cache or args.cache_dir:
        from repro.sweep.cache import ResultCache

        cache = ResultCache(args.cache_dir)

    from repro.sweep.engine import SweepEngine

    engine_kwargs: dict = {}
    if args.timeout is not None:
        engine_kwargs["timeout_s"] = args.timeout
    if args.retries is not None:
        engine_kwargs["retries"] = args.retries
    if args.fast:
        engine_kwargs["fast"] = True
    engine = SweepEngine(jobs=args.jobs, cache=cache, ledger=ledger,
                         **engine_kwargs)
    result = engine.run(specs)

    for spec, outcome in zip(specs, result.outcomes):
        if not outcome.ok:
            print(f"runall: {spec.artifact_id} failed after "
                  f"{outcome.attempts} attempt(s): {outcome.error}",
                  file=sys.stderr)
            continue
        payload = outcome.payload
        print(payload["text"])
        print()
        if args.out:
            (args.out / f"{spec.slug}.txt").write_text(
                payload["text"] + "\n")
            if args.csv:
                (args.out / f"{spec.slug}.csv").write_text(
                    payload["csv"])
            if ledger is not None:
                ledger.append(spec.record(payload))
    if cache is not None or args.jobs > 1:
        print(result.summary(), file=sys.stderr)
    if args.stats_json is not None:
        import json

        stats = {
            "artifacts": len(result.outcomes),
            "computed": result.computed,
            "cached": result.hits,
            "failed": len(result.failed),
            "jobs": result.jobs,
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
            "retries": result.retries,
            "reaped": result.reaped,
        }
        for key, value in result.fastpath.items():
            stats[f"fastpath_{key}"] = value
        for key, value in result.serve.items():
            stats[f"serve_{key}"] = value
        if result.serve.get("batches_formed"):
            stats["serve_mean_batch_occupancy"] = round(
                result.serve.get("lanes_dispatched", 0)
                / result.serve["batches_formed"], 3)
        args.stats_json.parent.mkdir(parents=True, exist_ok=True)
        args.stats_json.write_text(
            json.dumps(stats, sort_keys=True) + "\n")
    if root is not None:
        from repro import obs
        from repro.obs.export import telemetry_record, write_export

        root.finish("error" if result.failed else "ok")
        snapshot = obs.disable()
        paths = write_export(
            snapshot, str(args.obs_out) if args.obs_out else None)
        record = telemetry_record(snapshot, config=f"jobs={args.jobs}",
                                  export_path=paths["json"])
        if ledger is not None:
            ledger.append(record)
        else:
            from repro.regress.ledger import default_ledger

            default_ledger().append(record)
        print(f"telemetry: {paths['json']}", file=sys.stderr)
    if ledger is not None:
        print(f"(ledger: {ledger.path_for('bench')})")
    return 1 if result.failed else 0


if __name__ == "__main__":
    sys.exit(main())
