"""Regenerate every table and figure: ``python -m repro.harness.runall``.

Writes the rendered artifacts to stdout and, with ``--out DIR``, one text
file per artifact into the given directory (``--csv`` adds machine-
readable CSV next to each text file).

Observability modes (instead of rendering artifacts):

* ``--profile [CURVE:CONFIG:PRIMITIVE]`` -- per-operation cycle/energy
  profile of one full primitive (default ``P-256:baseline:sign``),
  reconciled against its :class:`EnergyReport`;
* ``--profile-kernel NAME:K`` -- cycle-level per-symbol profile of one
  assembled kernel run (hot-spot table + collapsed stacks);
* ``--trace FILE [--trace-kernel NAME:K]`` -- run one kernel with
  tracing on and write a Chrome ``trace_event`` JSON (open in Perfetto
  or chrome://tracing).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.harness.figures import FIGURES, render_figure
from repro.harness.tables import TABLES, render_table

DEFAULT_PROFILE = "P-256:baseline:sign"
DEFAULT_TRACE_KERNEL = "os_mul:8"


def _normalize(token: str) -> tuple[str | None, str]:
    """``(kind, name)``; a ``table_``/``figure_`` prefix pins the kind."""
    t = token.lower().replace("_", ".")
    for kind in ("table", "figure"):
        if t.startswith(kind + "."):
            return kind, t[len(kind) + 1:]
    return None, t


def _matches(token: tuple[str | None, str], kind: str, name: str) -> bool:
    """Exact name, or a prefix ending at a component boundary (so
    ``7.1`` selects 7.1 but not 7.15, and ``7`` selects all of 7.x)."""
    want_kind, t = token
    if want_kind is not None and want_kind != kind:
        return False
    if t == name:
        return True
    return name.startswith(t) and not name[len(t)].isalnum()


def select_artifacts(only: list[str] | None) -> list[tuple[str, str]]:
    """Resolve ``--only`` tokens to (kind, name) pairs, in artifact
    order; raises ``SystemExit`` on tokens matching nothing."""
    catalog = ([("table", n) for n in TABLES]
               + [("figure", n) for n in FIGURES])
    if not only:
        return catalog
    tokens = [_normalize(t) for t in only]
    unknown = [orig for orig, t in zip(only, tokens)
               if not any(_matches(t, kind, name)
                          for kind, name in catalog)]
    if unknown:
        names = " ".join(sorted({n for _, n in catalog}))
        raise SystemExit(
            f"runall: unknown artifact name(s): {' '.join(unknown)}\n"
            f"available: {names}")
    return [(kind, name) for kind, name in catalog
            if any(_matches(t, kind, name) for t in tokens)]


def _parse_spec(spec: str, default: str, n: int, what: str) -> list[str]:
    parts = (spec or default).split(":")
    if len(parts) != n:
        raise SystemExit(f"runall: bad {what} spec {spec!r} "
                         f"(expected {n} ':'-separated fields, "
                         f"like {default!r})")
    return parts


def _run_profile(spec: str) -> None:
    from repro.trace.opprofile import profile_primitive

    curve, config, primitive = _parse_spec(spec, DEFAULT_PROFILE, 3,
                                           "--profile")
    profile = profile_primitive(curve, config, primitive)
    print(profile.table())
    print(f"\nreconciliation vs EnergyReport: "
          f"{100 * profile.reconcile():.4f}% difference")


def _kernel_profile(spec: str):
    from repro.kernels.runner import KernelRunner
    from repro.trace.bus import CollectingSink
    from repro.trace.metrics import PowerSampler

    name, k = _parse_spec(spec, DEFAULT_TRACE_KERNEL, 2,
                          "--profile-kernel/--trace-kernel")
    events = CollectingSink()
    power = PowerSampler(interval_cycles=64)
    runner = KernelRunner()
    try:
        profiler, cpu = runner.profile(name, int(k),
                                       extra_sinks=(events, power))
    except KeyError as exc:
        raise SystemExit(f"runall: {exc.args[0]}")
    return profiler, cpu, events, power


def _run_kernel_profile(spec: str, dump: pathlib.Path | None = None) -> None:
    profiler, cpu, _, _ = _kernel_profile(spec)
    if dump is not None:
        import json

        record = profiler.to_record(
            f"kernel:{(spec or DEFAULT_TRACE_KERNEL).split(':')[0]}",
            config=spec or DEFAULT_TRACE_KERNEL)
        dump.parent.mkdir(parents=True, exist_ok=True)
        dump.write_text(json.dumps(record, indent=2, sort_keys=True)
                        + "\n")
        print(f"wrote profile dump to {dump}")
    print(profiler.table(top=20))
    diff = profiler.reconcile(cpu.stats)
    print(f"\nreconciliation vs EnergyReport: {100 * diff:.4f}% "
          f"difference")
    stacks = profiler.collapsed_stacks()
    if stacks:
        print("\ncollapsed stacks (flamegraph input):")
        print(stacks)


def _run_trace(path: pathlib.Path, spec: str) -> None:
    from repro.trace.chrome import write_chrome_trace

    profiler, cpu, events, power = _kernel_profile(spec)
    write_chrome_trace(
        path, events.events, symbols=profiler.symbols,
        power_series=power.power_series(),
        metadata={"kernel": spec or DEFAULT_TRACE_KERNEL,
                  "cycles": cpu.stats.cycles})
    print(f"wrote {len(events.events)} events to {path} "
          f"({cpu.stats.cycles} cycles simulated)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to write per-artifact text files")
    parser.add_argument("--only", nargs="*", default=None,
                        help="artifact names or prefixes "
                             "(e.g. 7.1 7_14 s7; unknown names fail)")
    parser.add_argument("--csv", action="store_true",
                        help="also write CSV files (requires --out)")
    parser.add_argument("--profile", nargs="?", const=DEFAULT_PROFILE,
                        metavar="CURVE:CONFIG:PRIMITIVE",
                        help="print the per-operation energy profile of "
                             f"one primitive (default {DEFAULT_PROFILE})")
    parser.add_argument("--profile-kernel", metavar="NAME:K",
                        help="print the per-symbol profile of one "
                             "kernel run (e.g. os_mul:8)")
    parser.add_argument("--profile-json", type=pathlib.Path,
                        metavar="FILE",
                        help="with --profile-kernel: also write the "
                             "profile as a run record (diffable with "
                             "`python -m repro.regress diff`)")
    parser.add_argument("--ledger", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="ledger directory for per-artifact records "
                             "(default: LEDGER under --out)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="with --out: skip the ledger records")
    parser.add_argument("--trace", type=pathlib.Path, metavar="FILE",
                        help="write a Chrome trace_event JSON of one "
                             "kernel run")
    parser.add_argument("--trace-kernel", default=DEFAULT_TRACE_KERNEL,
                        metavar="NAME:K",
                        help="kernel for --trace "
                             f"(default {DEFAULT_TRACE_KERNEL})")
    args = parser.parse_args(argv)

    if args.profile or args.profile_kernel or args.trace:
        if args.profile:
            _run_profile(args.profile)
        if args.profile_kernel:
            _run_kernel_profile(args.profile_kernel, args.profile_json)
        if args.trace:
            _run_trace(args.trace, args.trace_kernel)
        return 0

    ledger = None
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
        if not args.no_ledger:
            from repro.regress.ledger import Ledger

            ledger = Ledger(args.ledger or args.out / "ledger")

    artifacts: list[tuple[str, str, str]] = []
    for kind, name in select_artifacts(args.only):
        render = render_table if kind == "table" else render_figure
        artifacts.append((kind, name, render(name)))

    for kind, name, text in artifacts:
        print(text)
        print()
        if args.out:
            stem = f"{kind}_{name}".replace(".", "_")
            (args.out / f"{stem}.txt").write_text(text + "\n")
            if args.csv:
                (args.out / f"{stem}.csv").write_text(
                    _to_csv(f"{kind}_{name}"))
            if ledger is not None:
                ledger.append(_artifact_record(kind, name))
    if ledger is not None:
        print(f"(ledger: {ledger.path_for('bench')})")
    return 0


def _artifact_record(kind: str, name: str) -> dict:
    """One ledger record per rendered artifact, summarized from the
    same rows the txt/csv files are rendered from -- ``results/`` and
    the ledger can therefore never disagree.  Figure series flatten
    into the record's ``components`` map so ``repro.regress diff``
    ranks per-series deltas."""
    from repro.trace.record import bench_record, summarize_rows, \
        summarize_series

    components: dict = {}
    if kind == "table":
        cycles, energy_uj, data = summarize_rows(TABLES[name]())
    else:
        series = FIGURES[name]()
        cycles, energy_uj, data = summarize_series(series)
        for sname, values in series.items():
            if isinstance(values, dict):
                components.update(
                    {f"{sname}/{k}": v for k, v in values.items()
                     if isinstance(v, (int, float))})
            elif isinstance(values, (int, float)):
                components[str(sname)] = values
    return bench_record(f"{kind}_{name}", cycles=cycles,
                        energy_uj=energy_uj, data=data,
                        components=components)


def _to_csv(artifact: str) -> str:
    """Flatten an artifact's data into CSV rows."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    kind, _, name = artifact.partition("_")
    if kind == "table":
        rows = TABLES[name]()
        writer.writerow(list(rows[0]))
        for row in rows:
            writer.writerow([row[key] for key in rows[0]])
    else:
        data = FIGURES[name]()
        writer.writerow(["series", "key", "value"])
        for series, values in data.items():
            if isinstance(values, dict):
                for key, value in values.items():
                    writer.writerow([series, key, value])
            else:
                writer.writerow([series, "", values])
    return buffer.getvalue()


if __name__ == "__main__":
    sys.exit(main())
