"""Regenerate every table and figure: ``python -m repro.harness.runall``.

Writes the rendered artifacts to stdout and, with ``--out DIR``, one text
file per artifact into the given directory (``--csv`` adds machine-
readable CSV next to each text file).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.harness.figures import FIGURES, render_figure
from repro.harness.tables import TABLES, render_table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to write per-artifact text files")
    parser.add_argument("--only", nargs="*", default=None,
                        help="artifact names (e.g. 7.1 7.14 s7.7)")
    parser.add_argument("--csv", action="store_true",
                        help="also write CSV files (requires --out)")
    args = parser.parse_args(argv)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)

    artifacts: list[tuple[str, str]] = []
    for name in TABLES:
        if args.only and name not in args.only:
            continue
        artifacts.append((f"table_{name}", render_table(name)))
    for name in FIGURES:
        if args.only and name not in args.only:
            continue
        artifacts.append((f"figure_{name}", render_figure(name)))

    for name, text in artifacts:
        print(text)
        print()
        if args.out:
            stem = name.replace(".", "_")
            (args.out / f"{stem}.txt").write_text(text + "\n")
            if args.csv:
                (args.out / f"{stem}.csv").write_text(_to_csv(name))
    return 0


def _to_csv(artifact: str) -> str:
    """Flatten an artifact's data into CSV rows."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    kind, _, name = artifact.partition("_")
    if kind == "table":
        rows = TABLES[name]()
        writer.writerow(list(rows[0]))
        for row in rows:
            writer.writerow([row[key] for key in rows[0]])
    else:
        data = FIGURES[name]()
        writer.writerow(["series", "key", "value"])
        for series, values in data.items():
            if isinstance(values, dict):
                for key, value in values.items():
                    writer.writerow([series, key, value])
            else:
                writer.writerow([series, "", values])
    return buffer.getvalue()


if __name__ == "__main__":
    sys.exit(main())
