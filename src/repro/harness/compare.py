"""Paper-vs-measured comparison report: ``python -m repro.harness.compare``.

Prints (and optionally writes) the complete record EXPERIMENTS.md is
built from: every latency-table row against the paper's value, every
headline factor against its published band, and the kernel/FFAU anchors.
Exit status is non-zero if any tracked quantity leaves its tolerance, so
the command doubles as a reproduction gate for CI.
"""

from __future__ import annotations

import argparse
import math
import sys
from dataclasses import dataclass

from repro.harness.tables import (
    PAPER_TABLE_7_1,
    PAPER_TABLE_7_2,
    ffau_width_point,
    PAPER_TABLE_7_4,
)
from repro.kernels.runner import shared_runner
from repro.model.system import SystemModel


@dataclass(frozen=True)
class Comparison:
    """One tracked quantity."""

    name: str
    measured: float
    reference: float
    tolerance: float  # allowed |measured/reference - 1|
    note: str = ""

    @property
    def ratio(self) -> float:
        if self.reference == 0:
            return 1.0 if self.measured == 0 else math.inf
        return self.measured / self.reference

    @property
    def ok(self) -> bool:
        if self.reference == 0:
            return self.measured == 0
        return abs(self.ratio - 1.0) <= self.tolerance


@dataclass(frozen=True)
class BandComparison:
    """A factor that must land inside (a widened) published band."""

    name: str
    measured: float
    low: float
    high: float
    note: str = ""

    @property
    def ok(self) -> bool:
        return self.low <= self.measured <= self.high


#: Rows excluded from the strict gate because the paper's own entries
#: break their surrounding trends (see EXPERIMENTS.md).
PAPER_ANOMALIES = {
    ("P-521", "baseline", "verify"),
    ("B-283", "binary_isa", "verify"),
}


def latency_comparisons(model: SystemModel) -> list[Comparison]:
    out = []
    for (curve, config), (ps, pv) in {**PAPER_TABLE_7_1,
                                      **PAPER_TABLE_7_2}.items():
        lat = model.latency(curve, config)
        for primitive, measured, paper in (
                ("sign", lat.sign_cycles / 1e5, ps),
                ("verify", lat.verify_cycles / 1e5, pv)):
            note = ""
            tolerance = 0.25
            if (curve, config, primitive) in PAPER_ANOMALIES:
                tolerance = 0.60
                note = "paper's own entry breaks its trend"
            out.append(Comparison(
                f"{curve}/{config}/{primitive} (100K cyc)",
                measured, paper, tolerance, note))
    return out


#: The paper's headline energy-ratio bands (EXPERIMENTS.md "Headline
#: factors") as data: name, numerator (curve, config), denominator
#: (curve, config), allowed band, note.  This table is the single
#: source both the gate below and the :mod:`repro.regress` fidelity
#: scorecard evaluate.
FACTOR_BAND_SPECS: tuple[tuple, ...] = (
    ("ISA factor P-192", ("P-192", "baseline"), ("P-192", "isa_ext"),
     1.32, 1.48, "published 1.32-1.45"),
    ("ISA factor P-256", ("P-256", "baseline"), ("P-256", "isa_ext"),
     1.32, 1.48, "published 1.32-1.45"),
    ("Monte factor P-192", ("P-192", "baseline"), ("P-192", "monte"),
     5.0, 7.0, "published 5.17-6.34"),
    ("Monte factor P-256", ("P-256", "baseline"), ("P-256", "monte"),
     5.0, 7.0, "published 5.17-6.34"),
    ("Monte factor P-521", ("P-521", "baseline"), ("P-521", "monte"),
     5.0, 7.0, "published 5.17-6.34"),
    ("binary SW/ISA B-163", ("B-163", "baseline"), ("B-163", "binary_isa"),
     6.0, 8.5, "published 6.40-8.46"),
    ("binary SW/ISA B-571", ("B-571", "baseline"), ("B-571", "binary_isa"),
     6.0, 8.5, "published 6.40-8.46"),
    ("Billie/Monte 163/192", ("P-192", "monte"), ("B-163", "billie"),
     1.7, 2.2, "published 1.92"),
    ("Billie/Monte 571/521 (convergence)",
     ("P-521", "monte"), ("B-571", "billie"),
     0.8, 1.45, "published: converged"),
)

#: Cycle-exact kernel anchors (Section 6): kernel, k, paper cycles,
#: tolerance, note.
KERNEL_ANCHOR_SPECS: tuple[tuple, ...] = (
    ("ps_mul_ext", 6, 374, 0.10, ""),
    ("ps_mulgf2", 6, 376, 0.10, ""),
    ("red_b163", 6, 100, 0.10, ""),
    ("red_p192", 6, 97, 0.85, "different conditional-subtract structure"),
)


#: Kernels whose static cycle bound must land within 2x of an observed
#: run (the analyzer's tightness acceptance on straight-line GF(p)
#: kernels).  Only constant-time kernels qualify: their observed cycle
#: counts are independent of the random operands, so the band verdict
#: is deterministic across runs.
TIGHTNESS_KERNELS: tuple[str, ...] = ("mp_add", "mp_sub", "os_mul")


def tightness_comparisons() -> list[BandComparison]:
    """Static-bound tightness (bound/observed cycles) per kernel."""
    from repro.analysis.registry import KERNELS
    from repro.analysis.verify import verify_kernel

    known = {s.name: s for s in KERNELS}
    runner = shared_runner()
    out = []
    for name in TIGHTNESS_KERNELS:
        report = verify_kernel(known[name], runner=runner)
        out.append(BandComparison(
            f"static bound tightness {name}",
            report.tightness if report.tightness is not None else math.inf,
            1.0, 2.0, "bound >= observed, within 2x"))
    return out


def factor_comparisons(model: SystemModel) -> list[BandComparison]:
    def uj(curve, config):
        return model.report(curve, config).total_uj

    return [BandComparison(name, uj(*num) / uj(*den), low, high, note)
            for name, num, den, low, high, note in FACTOR_BAND_SPECS]


def anchor_comparisons() -> list[Comparison]:
    runner = shared_runner()
    out = []
    for name, k, paper, tolerance, note in KERNEL_ANCHOR_SPECS:
        label = (f"kernel {name} k={k} (cycles)" if name.startswith("ps_")
                 else f"kernel {name} (cycles)")
        out.append(Comparison(label, runner.measure(name, k).cycles,
                              paper, tolerance, note))
    for (width, bits), (power, time_ns, energy) in PAPER_TABLE_7_4.items():
        point = ffau_width_point(width, bits)
        out.append(Comparison(f"FFAU w={width} {bits}-bit energy (nJ)",
                              point["energy_nj"], energy, 0.12))
    return out


def all_rows(model: SystemModel | None = None
             ) -> tuple[list[Comparison], list[BandComparison]]:
    """Every tracked quantity: the one list both :func:`run_report` and
    the :mod:`repro.regress` fidelity scorecard evaluate, so their
    verdicts reconcile by construction."""
    model = model or SystemModel()
    return (latency_comparisons(model) + anchor_comparisons(),
            factor_comparisons(model) + tightness_comparisons())


def run_report(verbose: bool = True) -> tuple[int, int]:
    """Print the full report; returns (passed, failed)."""
    rows, bands = all_rows()
    passed = failed = 0
    for row in rows:
        status = "ok " if row.ok else "FAIL"
        if verbose:
            extra = f"  [{row.note}]" if row.note else ""
            print(f"[{status}] {row.name:42s} {row.measured:10.2f} vs "
                  f"{row.reference:10.2f} ({row.ratio:5.2f}x, "
                  f"tol {row.tolerance:.0%}){extra}")
        passed, failed = (passed + 1, failed) if row.ok \
            else (passed, failed + 1)
    for band in bands:
        status = "ok " if band.ok else "FAIL"
        if verbose:
            extra = f"  [{band.note}]" if band.note else ""
            print(f"[{status}] {band.name:42s} {band.measured:10.2f} in "
                  f"[{band.low:.2f}, {band.high:.2f}]{extra}")
        passed, failed = (passed + 1, failed) if band.ok \
            else (passed, failed + 1)
    if verbose:
        print(f"\n{passed} comparisons ok, {failed} failed")
    return passed, failed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    _, failed = run_report(verbose=not args.quiet)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
