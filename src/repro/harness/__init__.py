"""Regeneration harness for every table and figure of the evaluation.

``python -m repro.harness.runall`` prints all of them; the individual
renderers live in :mod:`repro.harness.tables` and
:mod:`repro.harness.figures` and are also what the pytest-benchmark
suite under ``benchmarks/`` invokes.  The typed artifact catalog --
what the CLI, the sweep engine and :mod:`repro.api` all select from --
is :mod:`repro.harness.registry`.
"""

from repro.harness.figures import FIGURES, render_figure
from repro.harness.registry import (
    ArtifactSpec,
    UnknownArtifactError,
    get_spec,
    select,
)
from repro.harness.tables import TABLES, render_table

__all__ = [
    "ArtifactSpec",
    "FIGURES",
    "TABLES",
    "UnknownArtifactError",
    "get_spec",
    "render_figure",
    "render_table",
    "select",
]
