"""Regeneration harness for every table and figure of the evaluation.

``python -m repro.harness.runall`` prints all of them; the individual
renderers live in :mod:`repro.harness.tables` and
:mod:`repro.harness.figures` and are also what the pytest-benchmark
suite under ``benchmarks/`` invokes.
"""

from repro.harness.figures import FIGURES, render_figure
from repro.harness.tables import TABLES, render_table

__all__ = ["TABLES", "FIGURES", "render_table", "render_figure"]
