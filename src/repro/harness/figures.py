"""Renderers for the paper's figures (7.1 - 7.15).

Each ``fig7_x()`` returns the figure's *data series* (what the plot would
draw); ``render_figure`` prints them as text so the shape -- who wins, by
what factor, where crossovers fall -- is inspectable without matplotlib.
"""

from __future__ import annotations

from repro.accel.billie import Billie, BillieConfig
from repro.accel.monte import Monte, MonteConfig
from repro.ec.curves import SECURITY_PAIRS, get_curve
from repro.ecdsa import generate_keypair
from repro.harness.tables import (
    BINARY_CURVES,
    PRIME_CURVES,
    ffau_width_point,
)
from repro.model.arm import ARM_CORTEX_M3
from repro.model.configs import ISA_EXT, with_icache
from repro.model.prior_work import GUO_SCHAUMONT_163
from repro.model.system import shared_model as _model

#: Components shown in the breakdown figures, in plot order.
BREAKDOWN_COMPONENTS = ("Pete", "ROM", "RAM", "Uncore", "Monte", "Billie")


def _energy_uj(curve: str, config) -> float:
    return _model().report(curve, config).total_uj


def _breakdown(curve: str, config) -> dict[str, float]:
    report = _model().report(curve, config)
    return {comp: report.component_uj(comp)
            for comp in BREAKDOWN_COMPONENTS
            if report.component_uj(comp) > 0.0}


def fig7_1() -> dict[str, dict[str, float]]:
    """Energy per Sign+Verify vs key size, prime-field architectures."""
    series = {}
    for config in ("baseline", "isa_ext", "isa_ext_ic", "monte"):
        series[config] = {c: _energy_uj(c, config) for c in PRIME_CURVES}
    return series


def fig7_2() -> dict[str, dict[str, float]]:
    """Energy breakdown at 192- and 256-bit across prime architectures."""
    out = {}
    for curve in ("P-192", "P-256"):
        for config in ("baseline", "isa_ext", "isa_ext_ic", "monte"):
            out[f"{curve}/{config}"] = _breakdown(curve, config)
    return out


def fig7_3() -> dict[str, dict[str, float]]:
    """Baseline breakdown across the five prime fields."""
    return {c: _breakdown(c, "baseline") for c in PRIME_CURVES}


def fig7_4() -> dict[str, dict[str, float]]:
    """ISA-extended and Monte breakdowns across the prime fields."""
    out = {}
    for config in ("isa_ext", "monte"):
        for curve in PRIME_CURVES:
            out[f"{curve}/{config}"] = _breakdown(curve, config)
    return out


def fig7_5() -> dict[str, dict[str, float]]:
    """Binary fields: software-only baseline vs binary ISA extensions."""
    return {
        "baseline": {c: _energy_uj(c, "baseline") for c in BINARY_CURVES},
        "binary_isa": {c: _energy_uj(c, "binary_isa")
                       for c in BINARY_CURVES},
    }


def fig7_6() -> dict[str, dict[str, float]]:
    """Binary ISA-extension breakdown across the binary fields."""
    return {c: _breakdown(c, "binary_isa") for c in BINARY_CURVES}


def fig7_7() -> dict[str, dict[str, float]]:
    """Prime vs binary at equivalent security, all architectures."""
    series: dict[str, dict[str, float]] = {}
    for prime, binary in SECURITY_PAIRS:
        pair = f"{prime.split('-')[1]}/{binary.split('-')[1]}"
        series.setdefault("prime baseline", {})[pair] = _energy_uj(
            prime, "baseline")
        series.setdefault("prime isa_ext", {})[pair] = _energy_uj(
            prime, "isa_ext")
        series.setdefault("binary baseline", {})[pair] = _energy_uj(
            binary, "baseline")
        series.setdefault("binary isa_ext", {})[pair] = _energy_uj(
            binary, "binary_isa")
        series.setdefault("Monte", {})[pair] = _energy_uj(prime, "monte")
        series.setdefault("Billie", {})[pair] = _energy_uj(binary, "billie")
    return series


def fig7_8() -> dict[str, dict[str, float]]:
    """Monte vs Billie breakdowns across field sizes."""
    out = {}
    for prime, binary in SECURITY_PAIRS:
        out[f"{prime}/monte"] = _breakdown(prime, "monte")
        out[f"{binary}/billie"] = _breakdown(binary, "billie")
    return out


def fig7_9() -> dict[str, dict[str, float]]:
    """Accelerated-architecture breakdowns at 192/163 and 256/283 bits."""
    out = {}
    for prime, binary in (("P-192", "B-163"), ("P-256", "B-283")):
        out[f"{prime}/monte"] = _breakdown(prime, "monte")
        out[f"{binary}/billie"] = _breakdown(binary, "billie")
        out[f"{prime}/isa_ext"] = _breakdown(prime, "isa_ext")
        out[f"{binary}/binary_isa"] = _breakdown(binary, "binary_isa")
    return out


def fig7_10() -> dict[str, dict[str, float]]:
    """Static and dynamic power of the evaluated microarchitectures."""
    points = [
        ("baseline (prime avg)", PRIME_CURVES, "baseline"),
        ("baseline (binary avg)", BINARY_CURVES, "baseline"),
        ("isa_ext", PRIME_CURVES, "isa_ext"),
        ("binary_isa", BINARY_CURVES, "binary_isa"),
        ("isa_ext + 4KB I$", PRIME_CURVES, "isa_ext_ic"),
        ("monte", PRIME_CURVES, "monte"),
    ]
    out = {}
    for label, curves, config in points:
        static = dynamic = 0.0
        for curve in curves:
            report = _model().report(curve, config)
            static += report.static_power_mw
            dynamic += report.dynamic_power_mw
        out[label] = {"static_mw": static / len(curves),
                      "dynamic_mw": dynamic / len(curves)}
    for binary in BINARY_CURVES:
        report = _model().report(binary, "billie")
        out[f"billie {binary}"] = {"static_mw": report.static_power_mw,
                                   "dynamic_mw": report.dynamic_power_mw}
    return out


def fig7_11() -> dict[str, dict[str, float]]:
    """Ideal-instruction-cache energy improvement vs key size."""
    out: dict[str, dict[str, float]] = {}
    for config in ("baseline", "isa_ext", "monte"):
        out[config] = {}
        for curve in ("P-192", "P-256", "P-384"):
            full = _model().report(curve, config)
            ideal = _model().report(curve, config, ideal_icache=True)
            out[config][curve] = 100.0 * (1 - ideal.total_uj / full.total_uj)
    return out


def fig7_12() -> dict[str, float]:
    """Energy per 192-bit Sign+Verify vs real I-cache configuration."""
    out = {"no cache": _energy_uj("P-192", "isa_ext")}
    for size_kb in (1, 2, 4, 8):
        for prefetch in (False, True):
            config = with_icache(ISA_EXT, size_kb * 1024, prefetch)
            label = f"{size_kb}KB" + ("-p" if prefetch else "")
            out[label] = _energy_uj("P-192", config)
    return out


def fig7_13() -> dict[str, dict[str, float]]:
    """Prime ISA ext + 4KB I-cache breakdown across the prime fields."""
    return {c: _breakdown(c, "isa_ext_ic") for c in PRIME_CURVES}


def fig7_14() -> dict[str, dict]:
    """163-bit scalar multiplication performance vs multiplier digit size,
    Billie (sliding window and Montgomery ladder) vs Guo et al."""
    from repro.model.billie_driver import (
        run_montgomery_ladder,
        run_sliding_window,
    )

    curve = get_curve("B-163")
    d, _ = generate_keypair(curve, seed=b"fig714")
    out: dict[str, dict] = {"billie_sliding": {}, "billie_ladder": {}}
    for digit in (1, 2, 3, 4, 6, 8):
        billie = Billie(BillieConfig(m=163, digit=digit))
        run = run_sliding_window(curve, d, curve.generator, billie)
        out["billie_sliding"][digit] = run.cycles
        billie = Billie(BillieConfig(m=163, digit=digit))
        run = run_montgomery_ladder(curve, d, curve.generator, billie)
        out["billie_ladder"][digit] = run.cycles
    out["guo_et_al"] = {p.digit_size: p.cycles for p in GUO_SCHAUMONT_163}
    return out


def fig7_15() -> dict[str, dict]:
    """Energy per Montgomery multiplication vs datapath width."""
    out: dict[str, dict] = {}
    for bits in (192, 256, 384):
        out[f"FFAU {bits}-bit"] = {
            w: ffau_width_point(w, bits)["energy_nj"]
            for w in (8, 16, 32, 64)
        }
    out["ARM Cortex-M3"] = {
        bits: ref.energy_nj for bits, ref in ARM_CORTEX_M3.items()
    }
    return out


def sec7_7_double_buffer() -> dict[str, float]:
    """Section 7.7: energy cost of disabling Monte's double buffering."""
    out = {}
    for curve in ("P-192", "P-384"):
        p = get_curve(curve).field.p
        on = Monte(p)
        off = Monte(p, MonteConfig(double_buffering=False))
        # whole-ECDSA proxy: representative mul/add stream (1 : 1.2 mix)
        t_on = (on.field_op_pattern_cycles("mul", 0.5)
                + 1.2 * on.field_op_pattern_cycles("add", 0.5))
        t_off = (off.field_op_pattern_cycles("mul", 0.5)
                 + 1.2 * off.field_op_pattern_cycles("add", 0.5))
        out[curve] = 100.0 * (t_off / t_on - 1.0)
    return out


def sec7_8_multiplier_ablation() -> dict[str, dict[str, float]]:
    """Section 7.8: Pete core power with alternative multiplier designs."""
    from repro.energy.components import karatsuba_multiplier_power_factors

    return {
        name: {"dynamic_factor": dyn, "static_factor": stat}
        for name, (dyn, stat) in
        karatsuba_multiplier_power_factors().items()
    }


def sec8_future_work() -> dict[str, dict[str, float]]:
    """The Section 8 future-work studies (savings vs base config, %)."""
    from repro.model.future_work import summary as fw_summary

    out: dict[str, dict[str, float]] = {}
    for study, results in fw_summary().items():
        out[study] = {
            f"{r.curve}:{r.variant_config}": r.saving_percent
            for r in results
        }
    return out


def sec8_datapath64() -> dict[str, dict[str, float]]:
    """The Section 8 64-bit-datapath estimate (speedup / energy factor)."""
    from repro.model.datapath64 import study as dp64_study

    out: dict[str, dict[str, float]] = {}
    for config in ("baseline", "isa_ext"):
        for curve, e in dp64_study(config).items():
            out[f"{config}/{curve}"] = {
                "speedup": e.speedup,
                "energy_factor": e.energy_factor,
            }
    return out


def background_rsa() -> dict[str, dict[str, float]]:
    """ECC vs security-equivalent RSA on the baseline (Section 2.1.5)."""
    from repro.model.rsa_compare import (
        compare_handshake,
        compare_node_signing,
    )

    out: dict[str, dict[str, float]] = {}
    for curve in ("P-192", "P-256", "P-384"):
        cmp = compare_handshake(curve)
        out[f"{curve} vs RSA-{cmp.rsa_bits}"] = {
            "ecc_uj": cmp.ecc_uj, "rsa_uj": cmp.rsa_uj,
            "ecc_advantage": cmp.ecc_advantage,
        }
    wander = compare_node_signing()
    out["node signing (Wander-style)"] = {
        "ecc_uj": wander.ecc_uj, "rsa_uj": wander.rsa_uj,
        "ecc_advantage": wander.ecc_advantage,
    }
    return out


FIGURES = {
    "7.1": fig7_1, "7.2": fig7_2, "7.3": fig7_3, "7.4": fig7_4,
    "7.5": fig7_5, "7.6": fig7_6, "7.7": fig7_7, "7.8": fig7_8,
    "7.9": fig7_9, "7.10": fig7_10, "7.11": fig7_11, "7.12": fig7_12,
    "7.13": fig7_13, "7.14": fig7_14, "7.15": fig7_15,
    "s7.7": sec7_7_double_buffer, "s7.8": sec7_8_multiplier_ablation,
    "s8.fw": sec8_future_work, "s8.w64": sec8_datapath64,
    "bg.rsa": background_rsa,
}


def render_figure(name: str) -> str:
    """Format a figure's series as text (recomputes the data)."""
    return render_series(name, FIGURES[name]())


def render_series(name: str, data: dict) -> str:
    """Format a figure's already-computed series as text."""
    lines = [f"Figure {name}"]
    for series, values in data.items():
        if isinstance(values, dict):
            inner = ", ".join(f"{k}={_fmt(v)}" for k, v in values.items())
            lines.append(f"  {series}: {inner}")
        else:
            lines.append(f"  {series}: {_fmt(values)}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
