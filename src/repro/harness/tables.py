"""Renderers for the paper's tables (7.1 - 7.5).

Each ``table7_x()`` function returns the table as a list of row dicts
(the data the paper's table prints); ``render_table`` formats it as
text.  Paper values are included alongside for EXPERIMENTS.md-style
comparison where the paper published absolute numbers.
"""

from __future__ import annotations

from repro.accel.ffau import FFAU, FFAUConfig
from repro.energy.components import FFAUPower
from repro.model.arm import ARM_CORTEX_M3
from repro.model.system import shared_model as _model

PRIME_CURVES = ("P-192", "P-224", "P-256", "P-384", "P-521")
BINARY_CURVES = ("B-163", "B-233", "B-283", "B-409", "B-571")

#: Paper's Table 7.1 (100K cycles): (sign, verify) per (curve, config).
PAPER_TABLE_7_1 = {
    ("P-192", "baseline"): (26.9, 34.27), ("P-224", "baseline"): (37.2, 47.9),
    ("P-256", "baseline"): (57.2, 72.8), ("P-384", "baseline"): (133.6, 174.9),
    ("P-521", "baseline"): (297.2, 304.8),
    ("P-192", "isa_ext"): (20.5, 25.6), ("P-224", "isa_ext"): (27.5, 34.6),
    ("P-256", "isa_ext"): (42.7, 53.7), ("P-384", "isa_ext"): (90.9, 114.6),
    ("P-521", "isa_ext"): (184.0, 230.5),
    ("P-192", "monte"): (6.0, 7.5), ("P-224", "monte"): (8.3, 10.3),
    ("P-256", "monte"): (10.9, 13.4), ("P-384", "monte"): (28.2, 34.9),
    ("P-521", "monte"): (64.5, 78.2),
}

#: Paper's Table 7.2 (100K cycles).
PAPER_TABLE_7_2 = {
    ("B-163", "baseline"): (58.8, 80.3), ("B-233", "baseline"): (122.3, 166.3),
    ("B-283", "baseline"): (182.0, 248.7), ("B-409", "baseline"): (414.4, 611.0),
    ("B-571", "baseline"): (1034.9, 1420.2),
    ("B-163", "binary_isa"): (9.7, 12.5), ("B-233", "binary_isa"): (18.3, 23.5),
    ("B-283", "binary_isa"): (24.4, 27.4), ("B-409", "binary_isa"): (55.0, 76.6),
    ("B-571", "binary_isa"): (136.2, 180.0),
    ("B-163", "billie"): (1.9, 2.3), ("B-233", "billie"): (3.4, 4.0),
    ("B-283", "billie"): (4.6, 5.4), ("B-409", "billie"): (9.0, 10.6),
    ("B-571", "billie"): (16.7, 19.7),
}


def table7_1() -> list[dict]:
    """Latency per operation (100K cycles), prime microarchitectures."""
    rows = []
    for config in ("baseline", "isa_ext", "monte"):
        for curve in PRIME_CURVES:
            lat = _model().latency(curve, config)
            ps, pv = PAPER_TABLE_7_1[(curve, config)]
            rows.append({
                "uarch": config, "key": curve,
                "sign": lat.sign_cycles / 1e5,
                "verify": lat.verify_cycles / 1e5,
                "sign+verify": lat.total_cycles / 1e5,
                "paper_sign": ps, "paper_verify": pv,
            })
    return rows


def table7_2() -> list[dict]:
    """Latency per operation (100K cycles), binary microarchitectures."""
    rows = []
    for config in ("baseline", "binary_isa", "billie"):
        for curve in BINARY_CURVES:
            lat = _model().latency(curve, config)
            ps, pv = PAPER_TABLE_7_2[(curve, config)]
            rows.append({
                "uarch": config, "key": curve,
                "sign": lat.sign_cycles / 1e5,
                "verify": lat.verify_cycles / 1e5,
                "sign+verify": lat.total_cycles / 1e5,
                "paper_sign": ps, "paper_verify": pv,
            })
    return rows


#: Paper's Table 7.3: width -> key -> (area, static uW, dynamic uW).
PAPER_TABLE_7_3 = {
    (8, 192): (2091, 32.3, 166.2), (16, 192): (4244, 59.3, 311.9),
    (32, 192): (11329, 159.1, 659.9), (64, 192): (36582, 530.6, 1472.7),
    (8, 256): (2091, 34.0, 186.2), (16, 256): (4244, 61.6, 310.2),
    (32, 256): (11327, 161.4, 684.4), (64, 256): (36582, 532.9, 1613.4),
    (8, 384): (2168, 35.4, 197.1), (16, 384): (4322, 65.0, 321.6),
    (32, 384): (11405, 164.3, 888.5), (64, 384): (36664, 535.7, 1686.5),
}


def table7_3() -> list[dict]:
    """FFAU area / static / dynamic power vs datapath width."""
    rows = []
    for bits in (192, 256, 384):
        for width in (8, 16, 32, 64):
            power = FFAUPower(width)
            paper = PAPER_TABLE_7_3[(width, bits)]
            rows.append({
                "key": bits, "width": width,
                "area_cells": power.area_cells,
                "static_uw": power.static_uw(bits),
                "dynamic_uw": power.dynamic_pj_per_cycle(bits) * 100,
                "paper_area": paper[0], "paper_static": paper[1],
                "paper_dynamic": paper[2],
            })
    return rows


#: Paper's Table 7.4: (width, key) -> (avg power uW, time ns, energy nJ).
PAPER_TABLE_7_4 = {
    (8, 192): (198.5, 13920, 2.763), (16, 192): (371.2, 4220, 1.566),
    (32, 192): (819.0, 1520, 1.245), (64, 192): (2004.3, 710, 1.423),
    (8, 256): (220.2, 23510, 5.176), (16, 256): (371.8, 6710, 2.495),
    (32, 256): (845.7, 2150, 1.818), (64, 256): (2146.3, 830, 1.782),
    (8, 384): (232.5, 50550, 11.755), (16, 384): (386.6, 13830, 5.347),
    (32, 384): (888.5, 4110, 3.652), (64, 384): (2222.3, 1410, 3.133),
}


def ffau_width_point(width: int, bits: int) -> dict:
    """One (width, key size) point of the FFAU study, 100 MHz clock."""
    ffau = FFAU(FFAUConfig(width=width))
    power_model = FFAUPower(width)
    k = -(-bits // width)
    cycles = ffau.montmul_cycles(k)
    time_ns = cycles * 10.0
    power_uw = (power_model.static_uw(bits)
                + power_model.dynamic_pj_per_cycle(bits) * 100)
    energy_nj = power_uw * 1e-6 * time_ns
    return {
        "width": width, "key": bits, "cycles": cycles,
        "power_uw": power_uw, "time_ns": time_ns, "energy_nj": energy_nj,
    }


def table7_4() -> list[dict]:
    """FFAU average power / time / energy per Montgomery mult."""
    rows = []
    for bits in (192, 256, 384):
        for width in (8, 16, 32, 64):
            row = ffau_width_point(width, bits)
            paper = PAPER_TABLE_7_4[(width, bits)]
            row.update({"paper_power": paper[0], "paper_time": paper[1],
                        "paper_energy": paper[2]})
            rows.append(row)
    return rows


def table7_5() -> list[dict]:
    """ARM Cortex-M3 reference (embedded published measurements)."""
    rows = []
    for bits, ref in ARM_CORTEX_M3.items():
        rows.append({
            "key": bits, "time_ns": ref.exec_time_ns,
            "power_uw": ref.average_power_uw,
            "energy_nj": ref.energy_nj,
        })
    return rows


def table_bounds() -> list[dict]:
    """Static analyzer summary per registered kernel.

    Purely static (no simulator run, no random operands), so the rows
    are deterministic and safe for the content-addressed sweep cache:
    the whole-program cycle/memory upper bounds
    (:mod:`repro.analysis.bounds`), the static superblock map, and the
    finding/waiver tallies from the verifier.  An analysis refusal
    (unbounded loop, irreducible region) surfaces as ``certified=0``
    with ``-1`` bounds rather than a crash.
    """
    from repro.analysis.bounds import compute_bound
    from repro.analysis.registry import KERNELS, report_kernel
    from repro.analysis.superblock import coverage, static_blocks
    from repro.analysis.verify import analyze_spec

    rows = []
    for spec in KERNELS:
        program, result = analyze_spec(spec)
        br = compute_bound(result)
        lint = report_kernel(spec)
        certified = br.certified
        total = br.total
        rows.append({
            "kernel": spec.name, "k": spec.measure_k,
            "certified": int(certified),
            "bound_cycles": total.cycles if certified else -1,
            "bound_instrs": total.instructions if certified else -1,
            "ram_writes": total.ram_writes if certified else -1,
            "superblocks": len(static_blocks(program)),
            "sb_coverage": coverage(program),
            "dead_branches": len(result.dead_branches),
            "calls": len(result.calls),
            "findings": len(lint.findings) + len(result.findings),
            "waived": len(lint.waived),
        })
    return rows


TABLES = {
    "7.1": table7_1,
    "7.2": table7_2,
    "7.3": table7_3,
    "7.4": table7_4,
    "7.5": table7_5,
    "bounds": table_bounds,
}


def render_table(name: str) -> str:
    """Format a table as aligned text (recomputes the rows)."""
    return render_rows(name, TABLES[name]())


def render_rows(name: str, rows: list[dict]) -> str:
    """Format already-computed table rows as aligned text."""
    if not rows:
        return f"Table {name}: (empty)"
    keys = list(rows[0])
    widths = {k: max(len(k), max(len(_fmt(r[k])) for r in rows))
              for k in keys}
    lines = [f"Table {name}"]
    lines.append("  ".join(k.ljust(widths[k]) for k in keys))
    for row in rows:
        lines.append("  ".join(_fmt(row[k]).ljust(widths[k]) for k in keys))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
