"""Typed artifact registry: the one catalog of the paper's artifacts.

Every table and figure of the evaluation chapter is registered here as
an :class:`ArtifactSpec` -- ``(kind, name, producer, params)``.  The
registry is the single source the CLI (``runall``), the sweep engine
(:mod:`repro.sweep`), the public facade (:mod:`repro.api`) and the
regression gate's model cross-product all consume; the ad-hoc
``TABLES``/``FIGURES`` plumbing that used to be copied between them
lives only behind this module now.

An :class:`ArtifactSpec` knows how to *produce* its data (run the
simulators/models), *render* it (text and CSV), *summarize* it into the
ledger-record quantities, and assemble the whole thing into a cacheable
``payload`` -- the unit the sweep engine memoizes and replays.
"""

from __future__ import annotations

import csv
import io
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

from repro.harness.figures import FIGURES, render_series
from repro.harness.tables import TABLES, render_rows

KINDS = ("table", "figure")

#: Keys of the cacheable payload an :meth:`ArtifactSpec.payload` builds.
PAYLOAD_KEYS = ("text", "csv", "cycles", "energy_uj", "data",
                "components", "wall_s")


class UnknownArtifactError(LookupError):
    """A selection token matched no registered artifact."""


@dataclass(frozen=True)
class ArtifactSpec:
    """One registered artifact: what produces it and how it renders."""

    kind: str
    name: str
    producer: Callable[..., object]
    params: tuple[tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown artifact kind {self.kind!r} "
                             f"(one of {', '.join(KINDS)})")

    # -- identity -----------------------------------------------------------

    @property
    def key(self) -> tuple[str, str]:
        return (self.kind, self.name)

    @property
    def artifact_id(self) -> str:
        """Ledger artifact name (``table_7.1``)."""
        return f"{self.kind}_{self.name}"

    @property
    def slug(self) -> str:
        """Filesystem stem (``table_7_1``)."""
        return self.artifact_id.replace(".", "_")

    @property
    def producer_module(self) -> str:
        """Module defining the producer -- the root of its code digest."""
        return self.producer.__module__

    # -- computation --------------------------------------------------------

    def produce(self):
        """Run the producer: table rows or figure series."""
        return self.producer(**dict(self.params))

    def render(self, data=None) -> str:
        """The artifact as aligned text (``data`` avoids recomputing)."""
        if data is None:
            data = self.produce()
        if self.kind == "table":
            return render_rows(self.name, data)
        return render_series(self.name, data)

    def to_csv(self, data=None) -> str:
        """The artifact flattened into CSV rows."""
        if data is None:
            data = self.produce()
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        if self.kind == "table":
            writer.writerow(list(data[0]))
            for row in data:
                writer.writerow([row[key] for key in data[0]])
        else:
            writer.writerow(["series", "key", "value"])
            for series, values in data.items():
                if isinstance(values, dict):
                    for key, value in values.items():
                        writer.writerow([series, key, value])
                else:
                    writer.writerow([series, "", values])
        return buffer.getvalue()

    def summarize(self, data) -> tuple[float, float, dict, dict]:
        """``(cycles, energy_uj, data, components)`` for the ledger.

        Figure series flatten into the ``components`` map so
        ``repro.regress diff`` ranks per-series deltas -- the same
        summarization ``runall --out`` has always recorded.
        """
        from repro.trace.record import summarize_rows, summarize_series

        components: dict = {}
        if self.kind == "table":
            cycles, energy_uj, extra = summarize_rows(data)
        else:
            cycles, energy_uj, extra = summarize_series(data)
            for sname, values in data.items():
                if isinstance(values, dict):
                    components.update(
                        {f"{sname}/{k}": v for k, v in values.items()
                         if isinstance(v, (int, float))})
                elif isinstance(values, (int, float)):
                    components[str(sname)] = values
        return cycles, energy_uj, extra, components

    def payload(self) -> dict:
        """Produce once; bundle text, CSV and record quantities.

        The payload is pure data (JSON-serializable): it is what the
        sweep cache stores and what a warm cache replays without
        touching a simulator.
        """
        start = time.perf_counter()
        data = self.produce()
        cycles, energy_uj, extra, components = self.summarize(data)
        return {
            "text": self.render(data),
            "csv": self.to_csv(data),
            "cycles": cycles,
            "energy_uj": energy_uj,
            "data": extra,
            "components": components,
            "wall_s": time.perf_counter() - start,
        }

    def record(self, payload: dict | None = None) -> dict:
        """One ledger ``bench`` record, summarized from the same data
        the txt/csv artifacts render -- ``results/`` and the ledger can
        therefore never disagree."""
        from repro.trace.record import bench_record

        if payload is None:
            payload = self.payload()
        return bench_record(self.artifact_id,
                            cycles=payload["cycles"],
                            energy_uj=payload["energy_uj"],
                            data=payload["data"],
                            components=payload["components"])


# ---------------------------------------------------------------------------
# The catalog
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1)
def registry() -> dict[tuple[str, str], ArtifactSpec]:
    """Every registered artifact, keyed ``(kind, name)``, in artifact
    order (tables first, then figures -- the historical runall order)."""
    specs: dict[tuple[str, str], ArtifactSpec] = {}
    for name, producer in TABLES.items():
        specs[("table", name)] = ArtifactSpec("table", name, producer)
    for name, producer in FIGURES.items():
        specs[("figure", name)] = ArtifactSpec("figure", name, producer)
    return specs


def get_spec(kind: str, name: str) -> ArtifactSpec:
    """Lookup one artifact; raises :class:`UnknownArtifactError`."""
    spec = registry().get((kind, name))
    if spec is None:
        raise UnknownArtifactError(
            f"unknown artifact {kind}_{name} "
            f"(available: {' '.join(sorted({n for _, n in registry()}))})")
    return spec


def model_rows() -> tuple[tuple[str, str], ...]:
    """The latency tables' (curve, config) cross-product.

    This is the registry's view of the model parameter space; the
    regression gate's full catalog
    (:func:`repro.regress.gate.full_model_rows`) consumes it rather
    than re-deriving its own copy.
    """
    from repro.harness.tables import PAPER_TABLE_7_1, PAPER_TABLE_7_2

    return tuple(sorted({**PAPER_TABLE_7_1, **PAPER_TABLE_7_2}))


# ---------------------------------------------------------------------------
# Selection (the --only matching rules)
# ---------------------------------------------------------------------------


def normalize_token(token: str) -> tuple[str | None, str]:
    """``(kind, name)``; a ``table_``/``figure_`` prefix pins the kind."""
    t = token.lower().replace("_", ".")
    for kind in KINDS:
        if t.startswith(kind + "."):
            return kind, t[len(kind) + 1:]
    return None, t


def matches(token: tuple[str | None, str], kind: str, name: str) -> bool:
    """Exact name, or a prefix ending at a component boundary (so
    ``7.1`` selects 7.1 but not 7.15, and ``7`` selects all of 7.x)."""
    want_kind, t = token
    if want_kind is not None and want_kind != kind:
        return False
    if t == name:
        return True
    return name.startswith(t) and not name[len(t)].isalnum()


def select(only: list[str] | None) -> list[ArtifactSpec]:
    """Resolve ``--only`` tokens to specs, in artifact order; raises
    :class:`UnknownArtifactError` on tokens matching nothing."""
    catalog = list(registry().values())
    if not only:
        return catalog
    tokens = [normalize_token(t) for t in only]
    unknown = [orig for orig, t in zip(only, tokens)
               if not any(matches(t, spec.kind, spec.name)
                          for spec in catalog)]
    if unknown:
        names = " ".join(sorted({spec.name for spec in catalog}))
        raise UnknownArtifactError(
            f"runall: unknown artifact name(s): {' '.join(unknown)}\n"
            f"available: {names}")
    return [spec for spec in catalog
            if any(matches(t, spec.kind, spec.name) for t in tokens)]
