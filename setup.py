"""Legacy setuptools entry point.

Kept (instead of a [build-system] table in pyproject.toml) so that
``pip install -e .`` works in fully offline environments: the PEP 517
path creates an isolated build environment and tries to download
setuptools/wheel, which air-gapped targets -- like the embedded-lab
machines this reproduction is aimed at -- cannot do.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of 'The Design Space of Ultra-low Energy "
                 "Asymmetric Cryptography' (ISPASS 2014)"),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[],
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "hypothesis", "numpy"],
    },
)
