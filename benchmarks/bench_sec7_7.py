"""Section 7.7 ablation: energy cost of disabling Monte's double buffering.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import sec7_7_double_buffer
from repro.harness import render_figure

from _common import run_once, show


def test_bench_sec7_7(benchmark):
    rows = run_once(benchmark, sec7_7_double_buffer)
    assert all(v > 0 for v in rows.values())
    show(render_figure, "s7.7")
