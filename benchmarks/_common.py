"""Shared helpers for the per-artifact benchmarks.

Each benchmark regenerates one table or figure of the paper's evaluation
chapter: the benchmarked callable *is* the artifact's full computation
(simulation + model), and the rendered rows are printed so a
``pytest benchmarks/ --benchmark-only -s`` run reproduces the paper's
artifacts verbatim.  Heavy artifacts run a single round.
"""

from __future__ import annotations


def run_once(benchmark, func):
    """Benchmark ``func`` with a single round (the simulations inside are
    deterministic, so repetition only re-measures Python overhead)."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def show(render_fn, name):
    """Print the rendered artifact (visible with -s / in CI logs)."""
    print()
    print(render_fn(name))
