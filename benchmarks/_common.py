"""Shared helpers for the per-artifact benchmarks.

Each benchmark regenerates one table or figure of the paper's evaluation
chapter: the benchmarked callable *is* the artifact's full computation
(simulation + model), and the rendered rows are printed so a
``pytest benchmarks/ --benchmark-only -s`` run reproduces the paper's
artifacts verbatim.  Heavy artifacts run a single round.

Every ``run_once`` additionally writes one structured JSON record
(artifact, config, cycles, energy, wall-clock, git sha + dirty flag)
via :mod:`repro.trace.record` -- to ``$BENCH_RECORD_DIR`` or
``results/bench/`` under the repo root -- and appends the same record
to the cross-run ledger (:mod:`repro.regress.ledger`, default
``results/ledger/bench.jsonl``) so runs are comparable across commits
with ``python -m repro.regress diff``.
"""

from __future__ import annotations


def run_once(benchmark, func, config: str = ""):
    """Benchmark ``func`` with a single round (the simulations inside are
    deterministic, so repetition only re-measures Python overhead)."""
    result = benchmark.pedantic(func, rounds=1, iterations=1)
    try:
        _write_record(benchmark, result, config)
    except Exception as exc:  # records must never fail the benchmark
        print(f"(bench record not written: {exc})")
    return result


def _artifact_name(benchmark) -> str:
    name = getattr(benchmark, "name", "") or "unknown"
    for prefix in ("test_bench_", "test_"):
        if name.startswith(prefix):
            return name[len(prefix):]
    return name


def _write_record(benchmark, result, config: str) -> None:
    from repro.regress.ledger import Ledger
    from repro.trace.record import bench_record, summarize_rows, \
        write_record

    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    wall_s = float(getattr(stats, "min", 0.0) or 0.0)
    cycles, energy_uj, data = summarize_rows(result)
    record = bench_record(_artifact_name(benchmark), config=config,
                          cycles=cycles, energy_uj=energy_uj,
                          wall_s=wall_s, data=data)
    path = write_record(record)
    Ledger().append(record)
    print(f"(bench record: {path})")


def show(render_fn, name):
    """Print the rendered artifact (visible with -s / in CI logs)."""
    print()
    print(render_fn(name))
