"""Algorithm-choice ablation: sliding-window width for the signature's
scalar multiplication (the DESIGN.md design-choice list).

The paper fixes the window at width 3 ({P, 3P, 5P}); this ablation sweeps
widths 2-6, counting the real point-operation mix each width produces on
a full-size scalar and pricing it in Monte FFAU cycles.  The sweep shows
the knee the paper's choice sits on: width 3 captures most of the
add-count reduction while the precompute (and, on Billie, register
pressure: width 4 already needs 7 table points) grows exponentially
beyond it.
"""

from repro.accel.monte import Monte
from repro.ec.curves import get_curve
from repro.ec.scalar import width_naf
from repro.ecdsa import generate_keypair

from _common import run_once


def _sweep():
    curve = get_curve("P-192")
    d, _ = generate_keypair(curve, seed=b"ablation")
    monte = Monte(curve.field.p)
    mul_eff = monte.field_op_pattern_cycles("mul", 0.5)
    add_eff = monte.field_op_pattern_cycles("add", 0.5)
    results = {}
    for width in (2, 3, 4, 5, 6):
        digits = width_naf(d, width)
        doubles = len(digits) - 1
        adds = sum(1 for digit in digits if digit)
        table_points = max(0, (1 << (width - 1)) // 2)
        precompute_adds = table_points  # one full add per odd multiple
        # mixed add 8M+3S, double 4M+4S, full add 12M+4S (field muls),
        # plus ~9 cheap additions each
        muls = (doubles * 8 + adds * 11 + precompute_adds * 16)
        field_adds = (doubles + adds + precompute_adds) * 9
        cycles = muls * mul_eff + field_adds * add_eff
        results[width] = {
            "doubles": doubles,
            "adds": adds,
            "table_points": 1 + table_points,
            "scalar_mult_cycles": cycles,
        }
    return results


def test_bench_ablation_window(benchmark):
    results = run_once(benchmark, _sweep)

    print()
    print("Sliding-window width ablation (P-192 scalar mult on Monte)")
    for width, row in results.items():
        print(f"  w={width}: {row['adds']:3d} adds, "
              f"{row['table_points']} table points, "
              f"{row['scalar_mult_cycles'] / 1e3:7.1f}K cycles")

    cycles = {w: r["scalar_mult_cycles"] for w, r in results.items()}
    # wider windows mean fewer adds ...
    adds = [results[w]["adds"] for w in (2, 3, 4, 5)]
    assert adds == sorted(adds, reverse=True)
    # ... and width 3 captures most of the benefit over width 2
    gain_23 = cycles[2] - cycles[3]
    gain_36 = cycles[3] - min(cycles[4], cycles[5], cycles[6])
    assert gain_23 > gain_36, \
        "diminishing returns beyond the paper's width-3 choice"
    # the precompute eventually wins: width 6 is no longer improving
    assert cycles[6] > cycles[5] * 0.97
