"""Fig. 7.1: energy per Sign+Verify vs key size, prime-field architectures.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_1
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_01(benchmark):
    rows = run_once(benchmark, fig7_1)
    assert set(rows) == {'baseline', 'isa_ext', 'isa_ext_ic', 'monte'}
    show(render_figure, "7.1")
