"""Fig. 7.3: baseline energy breakdown across the five prime fields.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_3
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_03(benchmark):
    rows = run_once(benchmark, fig7_3)
    assert len(rows) == 5
    show(render_figure, "7.3")
