"""Calibration-sensitivity study: perturb every energy coefficient by
+-25 % and check that the paper's qualitative conclusions all survive
(DESIGN.md Section 6's calibration policy, stress-tested).
"""

from repro.model.sensitivity import robustness_summary, sensitivity_sweep

from _common import run_once


def test_bench_sensitivity(benchmark):
    outcomes = run_once(benchmark, sensitivity_sweep)

    print()
    print("Calibration sensitivity (+-25 % per coefficient):")
    summary = robustness_summary()
    for conclusion, held in summary.items():
        print(f"  {conclusion:28s}: {'robust' if held else 'FRAGILE'}")
    fragile = [o for o in outcomes if not o.all_hold]
    print(f"  perturbations tested: {len(outcomes)}; "
          f"violations: {len(fragile)}")

    assert all(summary.values())
    assert not fragile
