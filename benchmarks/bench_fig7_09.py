"""Fig. 7.9: accelerated-architecture breakdowns at 192/163 and 256/283.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_9
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_09(benchmark):
    rows = run_once(benchmark, fig7_9)
    assert len(rows) == 8
    show(render_figure, "7.9")
