"""Fig. 7.2: energy breakdown at 192/256-bit across prime architectures.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_2
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_02(benchmark):
    rows = run_once(benchmark, fig7_2)
    assert any('monte' in key for key in rows)
    show(render_figure, "7.2")
