"""Signing-service load benchmark (BENCH_serve.json).

Boots the always-on service plane (:mod:`repro.serve`), offers
open-loop mixed-curve traffic at one or more arrival rates, and
records throughput, latency percentiles, shed rate and energy per
request.  This is the same entry point as ``python -m repro.serve``;
the CI ``serve-smoke`` job runs it with ``--require-warm`` so a
post-warm block compile or a single errored request fails the build.

Usage: ``PYTHONPATH=src python benchmarks/bench_serve.py
[--requests N] [--rates R1,R2] [--workers W] [--obs] [--out DIR]``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
