"""Fig. 7.7: prime vs binary at equivalent security, all architectures.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_7
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_07(benchmark):
    rows = run_once(benchmark, fig7_7)
    assert 'Billie' in rows and 'Monte' in rows
    show(render_figure, "7.7")
