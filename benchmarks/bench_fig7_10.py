"""Fig. 7.10: static and dynamic power of the evaluated microarchitectures.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_10
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_10(benchmark):
    rows = run_once(benchmark, fig7_10)
    assert all('static_mw' in v for v in rows.values())
    show(render_figure, "7.10")
