"""CI observability smoke: a profiled subset of the Table 7.1 benchmark.

Runs in about a minute where the full benchmark suite takes tens:

* one Table 7.1 row (P-192 baseline latency) as the artifact subset;
* the model-level per-operation profile of a P-256 baseline sign,
  asserting it reconciles with its :class:`EnergyReport`;
* one traced kernel run, writing the Chrome ``trace_event`` JSON, the
  collapsed stacks and the hot-spot table;
* one structured ``BENCH_smoke.json`` record tying it all to the commit.

Usage: ``PYTHONPATH=src python benchmarks/smoke_profile.py [OUT_DIR]``
(default ``results/smoke``).
"""

from __future__ import annotations

import pathlib
import sys
import time


def main(argv: list[str]) -> int:
    out_dir = pathlib.Path(argv[1] if len(argv) > 1 else "results/smoke")
    out_dir.mkdir(parents=True, exist_ok=True)
    t0 = time.perf_counter()

    # -- Table 7.1 subset: one latency row through the full model stack
    from repro.model.system import SystemModel

    model = SystemModel()
    latency = model.latency("P-192", "baseline")
    report = model.report("P-192", "baseline")
    print(f"P-192 baseline: sign {latency.sign_cycles:.0f} cycles, "
          f"verify {latency.verify_cycles:.0f} cycles, "
          f"{report.total_uj:.1f} uJ sign+verify")

    # -- model-level profile, reconciled
    from repro.trace.opprofile import profile_primitive

    profile = profile_primitive("P-256", "baseline", "sign")
    assert profile.reconcile() <= 1e-3, "profile does not reconcile"
    (out_dir / "profile_p256_sign.txt").write_text(profile.table() + "\n")
    print(profile.table())

    # -- traced kernel run: chrome trace + per-symbol profile
    from repro.kernels.runner import KernelRunner
    from repro.trace.bus import CollectingSink
    from repro.trace.chrome import write_chrome_trace
    from repro.trace.metrics import PowerSampler

    events = CollectingSink()
    power = PowerSampler(interval_cycles=64)
    runner = KernelRunner()
    profiler, cpu = runner.profile("os_mul", 8,
                                   extra_sinks=(events, power))
    assert profiler.reconcile(cpu.stats) <= 1e-3, \
        "kernel profile does not reconcile"
    write_chrome_trace(out_dir / "trace_os_mul.json", events.events,
                       symbols=profiler.symbols,
                       power_series=power.power_series(),
                       metadata={"kernel": "os_mul:8",
                                 "cycles": cpu.stats.cycles})
    (out_dir / "profile_os_mul.txt").write_text(
        profiler.table(top=20) + "\n\n" + profiler.collapsed_stacks()
        + "\n")

    # -- diffable profiler dump (python -m repro.regress diff)
    import json

    dump = profiler.to_record("kernel:os_mul", config="os_mul:8")
    (out_dir / "profile_os_mul.json").write_text(
        json.dumps(dump, indent=2, sort_keys=True) + "\n")

    # -- sweep-engine smoke: cold compute, then warm cache replay
    from repro.harness.registry import select
    from repro.sweep.cache import ResultCache
    from repro.sweep.engine import run_sweep

    specs = select(["table_7.3", "table_7.5"])
    cache = ResultCache(out_dir / "sweep-cache")
    cold = run_sweep(specs, cache=cache)
    warm = run_sweep(specs, cache=cache)
    assert warm.hits == len(specs), "warm sweep must replay from cache"
    assert [o.payload for o in cold.outcomes] == \
        [o.payload for o in warm.outcomes], "warm payloads must match"
    print(cold.summary())
    print(warm.summary())

    # -- the structured record, also appended to the run ledger
    from repro.regress.ledger import Ledger
    from repro.trace.record import bench_record, write_record

    record = bench_record(
        "smoke", config="P-192:baseline + P-256:baseline:sign + os_mul:8",
        cycles=cpu.stats.cycles,
        energy_uj=profile.report.total_uj,
        wall_s=time.perf_counter() - t0,
        data={"p192_sign_cycles": latency.sign_cycles,
              "p192_verify_cycles": latency.verify_cycles,
              "p256_sign_uj": profile.report.total_uj,
              "trace_events": len(events.events),
              "sweep_cold_computed": cold.computed,
              "sweep_warm_hits": warm.hits})
    path = write_record(record, str(out_dir))
    ledger_path = Ledger(out_dir / "ledger").append(record)
    print(f"smoke record: {path}")
    print(f"smoke ledger: {ledger_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
