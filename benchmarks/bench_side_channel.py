"""Timing side-channel study on the cycle-accurate Billie model
(the paper's Section 2.1.5 remark about Algorithm 1, measured).

Sweeps 162-bit scalars across Hamming weights through three scalar-
multiplication algorithms and reports the timing spread each one leaks.
"""

from repro.ec.curves import get_curve
from repro.model.side_channel import leakage_report

from _common import run_once


def _study():
    curve = get_curve("B-163")
    return {alg: leakage_report(alg, curve)
            for alg in ("double_and_add", "sliding_window",
                        "montgomery_ladder")}


def test_bench_side_channel(benchmark):
    reports = run_once(benchmark, _study)

    print()
    print("Timing leakage vs scalar Hamming weight (B-163 on Billie)")
    for alg, report in reports.items():
        per_weight = ", ".join(f"w{w}={c}" for w, c in
                               sorted(report.cycles_by_weight.items()))
        print(f"  {alg:18s}: spread {100 * report.spread:5.1f}%  "
              f"[{per_weight}]")

    assert reports["double_and_add"].leaks_weight
    assert reports["double_and_add"].spread > 0.25
    assert reports["montgomery_ladder"].spread < 0.02
    assert not reports["sliding_window"].leaks_weight
