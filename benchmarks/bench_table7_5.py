"""Table 7.5: ARM Cortex-M3 power and energy per modular multiplication.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.tables import table7_5
from repro.harness import render_table

from _common import run_once, show


def test_bench_table7_5(benchmark):
    rows = run_once(benchmark, table7_5)
    assert len(rows) == 3
    show(render_table, "7.5")
