"""Fig. 7.8: Monte vs Billie energy breakdowns across field sizes.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_8
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_08(benchmark):
    rows = run_once(benchmark, fig7_8)
    assert len(rows) == 10
    show(render_figure, "7.8")
