"""Fig. 7.12: energy per 192-bit Sign+Verify vs real I-cache configuration.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_12
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_12(benchmark):
    rows = run_once(benchmark, fig7_12)
    assert min(rows, key=rows.get).startswith('4KB')
    show(render_figure, "7.12")
