"""Table 7.3: FFAU area / static / dynamic power vs datapath width.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.tables import table7_3
from repro.harness import render_table

from _common import run_once, show


def test_bench_table7_3(benchmark):
    rows = run_once(benchmark, table7_3)
    assert len(rows) == 12
    show(render_table, "7.3")
