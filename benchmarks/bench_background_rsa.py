"""Background study: ECC vs security-equivalent RSA on the baseline
(paper Section 2.1.5 and the Wander et al. related work).

Reproduces the premise that made ECC "the only asymmetric cryptosystem
evaluated in this study": modular-exponentiation cryptography priced on
the same baseline system falls farther and farther behind ECC as the
security level rises.
"""

from repro.model.rsa_compare import (
    compare_handshake,
    compare_node_signing,
)

from _common import run_once


def _study():
    handshakes = {c: compare_handshake(c)
                  for c in ("P-192", "P-256", "P-384")}
    return handshakes, compare_node_signing(), compare_handshake("B-163")


def test_bench_background_rsa(benchmark):
    handshakes, wander, b163 = run_once(benchmark, _study)

    print()
    print("ECC vs security-equivalent RSA, baseline config (Sign+Verify)")
    for curve, cmp in handshakes.items():
        print(f"  {curve} ({cmp.ecc_uj:8.1f} uJ) vs RSA-{cmp.rsa_bits} "
              f"({cmp.rsa_uj:10.1f} uJ): ECC {cmp.ecc_advantage:6.1f}x "
              f"better")
    print(f"  Wander-style node signing: {wander.curve} vs "
          f"RSA-{wander.rsa_bits}: ECC {wander.ecc_advantage:.1f}x "
          f"(published: ~4.2x battery life)")
    print(f"  software B-163 vs RSA-1024: {b163.ecc_advantage:.2f}x "
          f"(software binary ECC loses -- the Section 7.2 point)")

    advantages = [cmp.ecc_advantage for cmp in handshakes.values()]
    assert advantages == sorted(advantages), \
        "ECC's advantage grows with the security level"
    assert 2.0 <= wander.ecc_advantage <= 7.0
    assert b163.ecc_advantage < 1.5
