"""Fig. 7.11: ideal-instruction-cache energy improvement vs key size.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_11
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_11(benchmark):
    rows = run_once(benchmark, fig7_11)
    assert rows['monte']['P-384'] < rows['baseline']['P-384']
    show(render_figure, "7.11")
