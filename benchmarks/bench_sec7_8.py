"""Section 7.8 ablation: Pete core power with alternative multiplier designs.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import sec7_8_multiplier_ablation
from repro.harness import render_figure

from _common import run_once, show


def test_bench_sec7_8(benchmark):
    rows = run_once(benchmark, sec7_8_multiplier_ablation)
    assert rows['karatsuba']['dynamic_factor'] == 1.0
    show(render_figure, "s7.8")

    from repro.model.prior_work import (
        KARATSUBA_POWER_SAVINGS,
        MICROBLAZE_COMPARISON,
    )

    print()
    print("Section 7.8 validation anchors:")
    print(f"  vs Microblaze (Virtex-5): +{100 * MICROBLAZE_COMPARISON['pete_extra_lut_ff_pairs']:.1f}% "
          f"LUT-FF pairs, -{100 * MICROBLAZE_COMPARISON['pete_fewer_dsp_blocks']:.1f}% DSP blocks, "
          f"+{100 * MICROBLAZE_COMPARISON['pete_performance_advantage']:.1f}% performance")
    print(f"  Karatsuba power saving: "
          f"{100 * KARATSUBA_POWER_SAVINGS['vs_operand_scan_multicycle']:.2f}% vs operand-scan, "
          f"{100 * KARATSUBA_POWER_SAVINGS['vs_parallel_pipelined']:.1f}% vs parallel multiplier")
    assert MICROBLAZE_COMPARISON["pete_performance_advantage"] > 0
