"""Table 7.1: latency per operation (100K cycles), prime-field microarchitectures.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.tables import table7_1
from repro.harness import render_table

from _common import run_once, show


def test_bench_table7_1(benchmark):
    rows = run_once(benchmark, table7_1)
    assert len(rows) == 15
    show(render_table, "7.1")
