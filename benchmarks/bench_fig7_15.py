"""Fig. 7.15: energy per Montgomery multiplication vs datapath width.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_15
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_15(benchmark):
    rows = run_once(benchmark, fig7_15)
    assert min(rows['FFAU 192-bit'], key=rows['FFAU 192-bit'].get) == 32
    show(render_figure, "7.15")
