"""Superblock fast-path throughput benchmark (BENCH_fastpath.json).

Times the run phase of the Table 7.1 GF(p) kernel subset on the
reference interpreter and on the superblock fast path
(:mod:`repro.pete.fastpath`), cold (module caches cleared, so
discovery + compilation are paid) and warm (the production steady
state: the runner's median-of-3 trials and every later measurement hit
the shared block map).  Each kernel is prepared once and cloned per
trial, so both interpreters consume byte-identical inputs; the final
architectural stats are asserted equal before any timing is reported.

With ``--batch``, benchmarks the lane-parallel engine
(:mod:`repro.pete.lanes`) instead: the same kernel subset at batch
widths 1-1024, instances/sec per width, against the warm scalar
fast-path rate as baseline -- written to ``OUT_DIR/BENCH_lanes.json``.
Both sides time the run phase only (prepare/engine construction
excluded), so the comparison is lock-step execution vs scalar
execution, not setup costs.

Usage: ``PYTHONPATH=src python benchmarks/bench_fastpath.py
[OUT_DIR] [--batch]`` (default ``results/smoke``).
"""

from __future__ import annotations

import pathlib
import sys
import time

#: Table 7.1 GF(p) kernel subset: field add/sub, school-book and
#: product-scanning multiply, squaring, NIST P-192 reduction.
KERNELS = (
    ("mp_add", 8), ("mp_sub", 8), ("os_mul", 8),
    ("ps_mul_ext", 8), ("ps_sqr_ext", 8), ("red_p192", 6),
)
TRIALS = 5
INNER = 10

#: lane-engine batch widths benchmarked by ``--batch``
BATCHES = (1, 4, 16, 64, 256, 1024)


def _time_run(cpu, entry, *, fast: bool,
              trials: int = TRIALS, inner: int = INNER) -> float:
    """Best per-run wall-clock over ``trials`` batches of ``inner``."""
    best = float("inf")
    for _ in range(trials):
        clones = [cpu.clone() for _ in range(inner)]
        t0 = time.perf_counter()
        for c in clones:
            c.run(entry, fast=fast)
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def _bench_lanes(out_dir: pathlib.Path) -> int:
    """Lane-engine throughput sweep -> ``OUT_DIR/BENCH_lanes.json``."""
    t0 = time.perf_counter()

    from repro.kernels.runner import KernelRunner
    from repro.pete.lanes import HAVE_NUMPY

    if not HAVE_NUMPY:
        print("bench_fastpath: --batch requires numpy",
              file=sys.stderr)
        return 1
    from repro.pete.lanes import LaneEngine, runtime_stats_snapshot

    runner = KernelRunner(cache={})
    rows = []
    width_cols = " ".join(f"{f'x{b}':>9}" for b in BATCHES)
    print(f"{'kernel':<14} {'fast1/s':>9} {width_cols}  "
          f"{'x64 spdup':>9}")
    for name, k in KERNELS:
        cpu, entry = runner.prepare(name, k)
        # scalar fast-path baseline: warm the shared block map, then
        # time the run phase exactly as the scalar benchmark does
        cpu.clone().run(entry, fast=True)
        fast1_rate = 1.0 / _time_run(cpu, entry, fast=True)

        # warm the lane code cache so every width measures steady state
        warm_cores, warm_entry = runner.prepare_lanes(name, k, 2)
        LaneEngine(warm_cores).run(warm_entry)

        per_batch = {}
        for width in BATCHES:
            cores, entry_b = runner.prepare_lanes(name, k, width)
            trials = 5 if width <= 64 else 2
            best = float("inf")
            for _ in range(trials):
                engine = LaneEngine(cores)
                t1 = time.perf_counter()
                engine.run(entry_b)
                best = min(best, time.perf_counter() - t1)
            per_batch[str(width)] = {
                "wall_ms": round(best * 1e3, 3),
                "per_s": round(width / best, 1),
            }
        speedup64 = per_batch["64"]["per_s"] / fast1_rate
        rows.append({
            "kernel": f"{name}:{k}",
            "fast1_per_s": round(fast1_rate, 1),
            "batch": per_batch,
            "speedup_vs_batch1_fast": round(speedup64, 2),
        })
        rates = " ".join(f"{per_batch[str(b)]['per_s']:>9.0f}"
                         for b in BATCHES)
        print(f"{name + ':' + str(k):<14} {fast1_rate:>9.0f} {rates}  "
              f"{speedup64:>8.2f}x")

    # subset throughput ratio (headline) + per-kernel geomean
    prod = 1.0
    for r in rows:
        prod *= r["speedup_vs_batch1_fast"]
    geomean64 = prod ** (1.0 / len(rows))
    total64 = sum(r["batch"]["64"]["per_s"] for r in rows)
    total_fast1 = sum(r["fast1_per_s"] for r in rows)
    agg64 = total64 / total_fast1
    print(f"\naggregate batch-64 vs scalar fast path: {agg64:.2f}x "
          f"subset throughput ({total64:,.0f} vs {total_fast1:,.0f} "
          f"instances/s), {geomean64:.2f}x per-kernel geomean")

    from repro.trace.record import bench_record, write_record

    record = bench_record(
        "lanes", kind="lanes",
        config=f"GF(p) subset, batches {BATCHES}",
        cycles=0, wall_s=round(time.perf_counter() - t0, 3),
        data={"batches": list(BATCHES),
              "kernels": rows,
              "speedup_vs_batch1_fast": round(agg64, 2),
              "speedup_geomean": round(geomean64, 2),
              "batch64_per_s": round(total64, 1),
              "fast1_per_s": round(total_fast1, 1),
              "engine": runtime_stats_snapshot()})
    path = write_record(record, str(out_dir))
    print(f"lanes record: {path}")
    return 0


def main(argv: list[str]) -> int:
    flags = [a for a in argv[1:] if a.startswith("-")]
    positional = [a for a in argv[1:] if not a.startswith("-")]
    unknown = set(flags) - {"--batch"}
    if unknown:
        print(f"bench_fastpath: unknown flag(s) "
              f"{', '.join(sorted(unknown))}", file=sys.stderr)
        return 2
    out_dir = pathlib.Path(positional[0] if positional
                           else "results/smoke")
    out_dir.mkdir(parents=True, exist_ok=True)
    if "--batch" in flags:
        return _bench_lanes(out_dir)
    t0 = time.perf_counter()

    from repro.kernels.runner import KernelRunner
    from repro.pete import fastpath

    runner = KernelRunner(cache={})
    rows = []
    print(f"{'kernel':<14} {'instr':>6} {'ref':>9} {'fast cold':>10} "
          f"{'fast warm':>10} {'speedup':>8}")
    for name, k in KERNELS:
        cpu, entry = runner.prepare(name, k)

        ref = cpu.clone()
        ref_stats = ref.run(entry)
        fast = cpu.clone()
        fast_stats = fast.run(entry, fast=True)
        assert ref_stats == fast_stats, \
            f"{name}:{k}: fast-path stats diverge from reference"

        t_ref = _time_run(cpu, entry, fast=False)
        fastpath._CODE_CACHE.clear()
        fastpath._BLOCK_MAPS.clear()
        t_cold = _time_run(cpu, entry, fast=True, trials=1, inner=1)
        t_warm = _time_run(cpu, entry, fast=True)

        speedup = t_ref / t_warm
        rows.append({
            "kernel": f"{name}:{k}",
            "instructions": ref_stats.instructions,
            "cycles": ref_stats.cycles,
            "ref_us": round(t_ref * 1e6, 1),
            "fast_cold_us": round(t_cold * 1e6, 1),
            "fast_warm_us": round(t_warm * 1e6, 1),
            "speedup_warm": round(speedup, 2),
            "minstr_per_s_fast": round(
                ref_stats.instructions / t_warm / 1e6, 3),
        })
        print(f"{name + ':' + str(k):<14} "
              f"{ref_stats.instructions:>6} {t_ref * 1e6:>8.0f}us "
              f"{t_cold * 1e6:>9.0f}us {t_warm * 1e6:>9.0f}us "
              f"{speedup:>7.2f}x")

    total_instr = sum(r["instructions"] for r in rows)
    agg = (sum(r["instructions"] for r in rows)
           / sum(r["instructions"] / r["speedup_warm"] for r in rows))
    print(f"\naggregate (instruction-weighted harmonic mean): "
          f"{agg:.2f}x over {total_instr} instructions")

    from repro.trace.record import bench_record, write_record

    record = bench_record(
        "fastpath", config="GF(p) subset, warm shared block map",
        cycles=sum(r["cycles"] for r in rows),
        wall_s=time.perf_counter() - t0,
        data={"kernels": rows,
              "aggregate_speedup_warm": round(agg, 2),
              "trials": TRIALS, "inner": INNER})
    path = write_record(record, str(out_dir))
    print(f"fastpath record: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
