"""Superblock fast-path throughput benchmark (BENCH_fastpath.json).

Times the run phase of the Table 7.1 GF(p) kernel subset on the
reference interpreter and on the superblock fast path
(:mod:`repro.pete.fastpath`), cold (module caches cleared, so
discovery + compilation are paid) and warm (the production steady
state: the runner's median-of-3 trials and every later measurement hit
the shared block map).  Each kernel is prepared once and cloned per
trial, so both interpreters consume byte-identical inputs; the final
architectural stats are asserted equal before any timing is reported.

Usage: ``PYTHONPATH=src python benchmarks/bench_fastpath.py [OUT_DIR]``
(default ``results/smoke``).
"""

from __future__ import annotations

import pathlib
import sys
import time

#: Table 7.1 GF(p) kernel subset: field add/sub, school-book and
#: product-scanning multiply, squaring, NIST P-192 reduction.
KERNELS = (
    ("mp_add", 8), ("mp_sub", 8), ("os_mul", 8),
    ("ps_mul_ext", 8), ("ps_sqr_ext", 8), ("red_p192", 6),
)
TRIALS = 5
INNER = 10


def _time_run(cpu, entry, *, fast: bool,
              trials: int = TRIALS, inner: int = INNER) -> float:
    """Best per-run wall-clock over ``trials`` batches of ``inner``."""
    best = float("inf")
    for _ in range(trials):
        clones = [cpu.clone() for _ in range(inner)]
        t0 = time.perf_counter()
        for c in clones:
            c.run(entry, fast=fast)
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def main(argv: list[str]) -> int:
    out_dir = pathlib.Path(argv[1] if len(argv) > 1 else "results/smoke")
    out_dir.mkdir(parents=True, exist_ok=True)
    t0 = time.perf_counter()

    from repro.kernels.runner import KernelRunner
    from repro.pete import fastpath

    runner = KernelRunner(cache={})
    rows = []
    print(f"{'kernel':<14} {'instr':>6} {'ref':>9} {'fast cold':>10} "
          f"{'fast warm':>10} {'speedup':>8}")
    for name, k in KERNELS:
        cpu, entry = runner.prepare(name, k)

        ref = cpu.clone()
        ref_stats = ref.run(entry)
        fast = cpu.clone()
        fast_stats = fast.run(entry, fast=True)
        assert ref_stats == fast_stats, \
            f"{name}:{k}: fast-path stats diverge from reference"

        t_ref = _time_run(cpu, entry, fast=False)
        fastpath._CODE_CACHE.clear()
        fastpath._BLOCK_MAPS.clear()
        t_cold = _time_run(cpu, entry, fast=True, trials=1, inner=1)
        t_warm = _time_run(cpu, entry, fast=True)

        speedup = t_ref / t_warm
        rows.append({
            "kernel": f"{name}:{k}",
            "instructions": ref_stats.instructions,
            "cycles": ref_stats.cycles,
            "ref_us": round(t_ref * 1e6, 1),
            "fast_cold_us": round(t_cold * 1e6, 1),
            "fast_warm_us": round(t_warm * 1e6, 1),
            "speedup_warm": round(speedup, 2),
            "minstr_per_s_fast": round(
                ref_stats.instructions / t_warm / 1e6, 3),
        })
        print(f"{name + ':' + str(k):<14} "
              f"{ref_stats.instructions:>6} {t_ref * 1e6:>8.0f}us "
              f"{t_cold * 1e6:>9.0f}us {t_warm * 1e6:>9.0f}us "
              f"{speedup:>7.2f}x")

    total_instr = sum(r["instructions"] for r in rows)
    agg = (sum(r["instructions"] for r in rows)
           / sum(r["instructions"] / r["speedup_warm"] for r in rows))
    print(f"\naggregate (instruction-weighted harmonic mean): "
          f"{agg:.2f}x over {total_instr} instructions")

    from repro.trace.record import bench_record, write_record

    record = bench_record(
        "fastpath", config="GF(p) subset, warm shared block map",
        cycles=sum(r["cycles"] for r in rows),
        wall_s=time.perf_counter() - t0,
        data={"kernels": rows,
              "aggregate_speedup_warm": round(agg, 2),
              "trials": TRIALS, "inner": INNER})
    path = write_record(record, str(out_dir))
    print(f"fastpath record: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
