"""Fig. 7.13: prime ISA extensions + 4KB I-cache breakdown, five fields.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_13
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_13(benchmark):
    rows = run_once(benchmark, fig7_13)
    assert len(rows) == 5
    show(render_figure, "7.13")
