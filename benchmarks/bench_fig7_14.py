"""Fig. 7.14: 163-bit scalar multiplication, Billie vs prior work, vs digit size.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_14
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_14(benchmark):
    rows = run_once(benchmark, fig7_14)
    assert all(rows['billie_sliding'][d] < c for d, c in rows['guo_et_al'].items())
    show(render_figure, "7.14")
