"""Section 8 future-work studies: SRAM register file, clock gating,
Monte-accelerated group-order inversion, flash program memory.

Regenerates all four variant studies and checks their headline effects;
run with ``pytest benchmarks/ --benchmark-only -s`` to see the numbers.
"""

from repro.model.future_work import summary

from _common import run_once


def test_bench_future_work(benchmark):
    studies = run_once(benchmark, summary)

    print()
    print("Section 8 future-work studies (energy saving vs base config)")
    for name, results in studies.items():
        print(f"  {name}:")
        for r in results:
            print(f"    {r.curve:6s} {r.base_config} -> "
                  f"{r.variant_config:18s} {r.base_uj:8.1f} -> "
                  f"{r.variant_uj:8.1f} uJ  ({r.saving_percent:+6.1f} %)")

    by_key = {(r.curve, r.variant_config): r
              for rs in studies.values() for r in rs}
    # gating + SRAM rescue Billie's large-field scaling
    assert by_key[("B-571", "billie_sram_gated")].saving_percent > 25.0
    # the Amdahl fix shortens Monte's critical path
    assert all(r.saving_percent > 5.0
               for r in studies["order_inversion"])
    # flash makes fetches dear; the I-cache then matters even more
    assert studies["flash_memory"][0].saving_percent < -50.0
    assert studies["flash_memory"][1].saving_percent > 50.0
