"""Fig. 7.5: binary fields, software baseline vs binary ISA extensions.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_5
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_05(benchmark):
    rows = run_once(benchmark, fig7_5)
    assert set(rows) == {'baseline', 'binary_isa'}
    show(render_figure, "7.5")
