"""Section 8 / Section 2.2 question: would a 64-bit Pete save energy?

An estimation study (not a simulation -- Pete's ISA is 32-bit) applying
the FFAU-validated datapath-width scaling to the software
configurations; see repro.model.datapath64 for the assumptions.
"""

from repro.model.datapath64 import study

from _common import run_once


def _both():
    return {"baseline": study("baseline"), "isa_ext": study("isa_ext")}


def test_bench_datapath64(benchmark):
    results = run_once(benchmark, _both)

    print()
    print("64-bit datapath estimate (structural scaling, 3 ns clock,")
    print("core dynamic energy x1.8):")
    for config, per_curve in results.items():
        for curve, e in per_curve.items():
            print(f"  {config:9s} {curve}: {e.speedup:4.2f}x faster, "
                  f"{e.energy_factor:4.2f}x less energy "
                  f"({e.energy_32_uj:7.1f} -> {e.energy_64_uj:7.1f} uJ)")

    base = results["baseline"]
    assert all(e.energy_factor > 1.7 for e in base.values())
    assert base["P-521"].speedup > base["P-192"].speedup
