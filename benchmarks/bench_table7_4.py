"""Table 7.4: FFAU average power / execution time / energy per Montgomery multiplication.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.tables import table7_4
from repro.harness import render_table

from _common import run_once, show


def test_bench_table7_4(benchmark):
    rows = run_once(benchmark, table7_4)
    assert len(rows) == 12
    show(render_table, "7.4")
