"""Fig. 7.6: binary ISA-extension breakdown across the binary fields.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.figures import fig7_6
from repro.harness import render_figure

from _common import run_once, show


def test_bench_fig7_06(benchmark):
    rows = run_once(benchmark, fig7_6)
    assert len(rows) == 5
    show(render_figure, "7.6")
