"""Table 7.2: latency per operation (100K cycles), binary-field microarchitectures.

Regenerates the artifact end to end (simulators + models) and checks its
structural claims; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered rows.
"""

from repro.harness.tables import table7_2
from repro.harness import render_table

from _common import run_once, show


def test_bench_table7_2(benchmark):
    rows = run_once(benchmark, table7_2)
    assert len(rows) == 15
    show(render_table, "7.2")
