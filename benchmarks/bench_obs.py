"""Telemetry-plane cost benchmark (BENCH_obs.json).

Times the warm superblock fast path on the Table 7.1 GF(p) kernel
subset three ways: telemetry disabled (the production default -- the
null guard must make this indistinguishable from pre-telemetry code),
telemetry enabled (spans + counters live), and telemetry enabled with
a ``pete.kernel`` span wrapped around every run (the worst realistic
case: one span per task, as the sweep engine does).  The disabled/
baseline ratio is the number the ``tests/obs/test_overhead`` guard
bounds at 1.05x; the enabled ratios document what ``--obs`` costs.

Usage: ``PYTHONPATH=src python benchmarks/bench_obs.py [OUT_DIR]``
(default ``results/smoke``).
"""

from __future__ import annotations

import pathlib
import sys
import time

#: Table 7.1 GF(p) kernel subset (same as benchmarks/bench_fastpath.py)
KERNELS = (
    ("mp_add", 8), ("mp_sub", 8), ("os_mul", 8),
    ("ps_mul_ext", 8), ("ps_sqr_ext", 8), ("red_p192", 6),
)
TRIALS = 5
INNER = 10


def _time_run(cpu, entry, *, spanned: bool) -> float:
    """Best per-run wall-clock over TRIALS batches of INNER clones."""
    from repro import obs

    best = float("inf")
    for _ in range(TRIALS):
        clones = [cpu.clone() for _ in range(INNER)]
        t0 = time.perf_counter()
        for c in clones:
            if spanned:
                with obs.span("pete.kernel"):
                    c.run(entry, fast=True)
            else:
                c.run(entry, fast=True)
        best = min(best, (time.perf_counter() - t0) / INNER)
    return best


def main(argv: list[str]) -> int:
    out_dir = pathlib.Path(argv[1] if len(argv) > 1 else "results/smoke")
    out_dir.mkdir(parents=True, exist_ok=True)
    t0 = time.perf_counter()

    from repro import obs
    from repro.kernels.runner import KernelRunner

    obs.disable()
    runner = KernelRunner(cache={})
    rows = []
    print(f"{'kernel':<14} {'instr':>6} {'off':>9} {'on':>9} "
          f"{'on+span':>9} {'on/off':>7} {'span/off':>8}")
    for name, k in KERNELS:
        cpu, entry = runner.prepare(name, k)
        stats = cpu.clone().run(entry, fast=True)   # warm the block map

        t_off = _time_run(cpu, entry, spanned=False)
        obs.enable()
        t_on = _time_run(cpu, entry, spanned=False)
        t_span = _time_run(cpu, entry, spanned=True)
        obs.disable()

        rows.append({
            "kernel": f"{name}:{k}",
            "instructions": stats.instructions,
            "cycles": stats.cycles,
            "obs_off_us": round(t_off * 1e6, 1),
            "obs_on_us": round(t_on * 1e6, 1),
            "obs_on_span_us": round(t_span * 1e6, 1),
            "ratio_on": round(t_on / t_off, 3),
            "ratio_on_span": round(t_span / t_off, 3),
        })
        print(f"{name + ':' + str(k):<14} {stats.instructions:>6} "
              f"{t_off * 1e6:>8.0f}us {t_on * 1e6:>8.0f}us "
              f"{t_span * 1e6:>8.0f}us {t_on / t_off:>6.2f}x "
              f"{t_span / t_off:>7.2f}x")

    total_instr = sum(r["instructions"] for r in rows)

    def _weighted(key: str) -> float:
        return round(sum(r["instructions"] * r[key] for r in rows)
                     / total_instr, 3)

    agg_on = _weighted("ratio_on")
    agg_span = _weighted("ratio_on_span")
    print(f"\ninstruction-weighted: obs on {agg_on:.3f}x, "
          f"on + per-run span {agg_span:.3f}x "
          f"(over {total_instr} instructions)")

    from repro.trace.record import bench_record, write_record

    record = bench_record(
        "obs", config="GF(p) subset, warm fast path",
        cycles=sum(r["cycles"] for r in rows),
        wall_s=time.perf_counter() - t0,
        data={"kernels": rows,
              "weighted_ratio_on": agg_on,
              "weighted_ratio_on_span": agg_span,
              "trials": TRIALS, "inner": INNER})
    path = write_record(record, str(out_dir))
    print(f"obs record: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
